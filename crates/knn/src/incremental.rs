//! The incremental top-k successor state (Section V of the paper,
//! "Efficient Incremental Execution", generalised from 1NN to top-k).
//!
//! Snoopy's systems trick is that the feasibility study is *incremental*:
//! successive-halving arm pulls extend a kNN state instead of recomputing
//! it, and label-cleaning steps relabel in place with an `O(test)` error
//! refresh. [`IncrementalTopK`] is the one type that carries that state for
//! every consumer — the bandit loop's streamed arm evaluation, the cleaning
//! loop's real-time re-checks, and the estimator pipeline's shared
//! [`NeighborTable`] — replacing the three overlapping predecessors
//! (`StreamedOneNn`, `IncrementalOneNn`, and per-call table builds).
//!
//! Three mutations, three cost classes:
//!
//! * **Train-row append** ([`IncrementalTopK::append`]) folds a batch of new
//!   training rows into every query's bounded top-k state through the tiled
//!   [`EvalEngine`] — `O(batch × queries)` kernel work, never a rebuild of
//!   what earlier batches already paid for. With a clustered backend the
//!   state keeps the centroids of its last k-means partition, assigns
//!   appended rows to the *existing* centroids
//!   ([`snoopy_linalg::kmeans::assign_to_centroids`]), folds the batch with
//!   the exact triangle-inequality pruning of [`ClusteredIndex`] (plus the
//!   two-phase int8 scan when the backend quantizes — new rows are encoded
//!   against the *frozen* affine of the last partition), and re-partitions
//!   from scratch only when the [`RepartitionPolicy`] fires — by default
//!   once the row count has grown [`REPARTITION_GROWTH`]× since the last
//!   partition; re-fitting the int8 affine rides the same pass (stale
//!   centroids and clamped codes only cost pruning power, never
//!   correctness). Re-partitioning needs the rows, so the clustered path
//!   keeps a copy of everything appended through it (`O(rows × d)` memory);
//!   the exhaustive path retains only labels and heaps.
//! * **Relabel** ([`IncrementalTopK::relabel_train`] /
//!   [`IncrementalTopK::relabel_test`] / [`IncrementalTopK::set_labels`])
//!   touches no features: cleaning never moves a neighbour, so the 1NN
//!   error ([`IncrementalTopK::error`]) and the k-prefix majority-vote
//!   error ([`IncrementalTopK::knn_error`]) refresh in one `O(test)` pass —
//!   the paper's "0.2 ms for 10 K test / 50 K training samples" real-time
//!   feedback, now for any `k ≤` the state's capacity.
//! * **Row eviction** ([`IncrementalTopK::evict_oldest`], opt-in via
//!   [`IncrementalTopK::with_eviction`]) ages the oldest rows out of a
//!   sliding window. A bounded top-k cannot pop a member without backfill,
//!   so an eviction-enabled state keeps a **`k + slack` admission buffer**
//!   per query and tracks, per query, the *certified-exact prefix length*
//!   `valid` of that buffer. The invariant: the first `valid` buffer entries
//!   are exactly the top-`valid` of the surviving window, because every row
//!   ever refused or ejected by a full buffer was lexicographically worse
//!   than the buffer's worst at that moment (which only improves during
//!   appends), and eviction only removes entries. A pure append re-certifies
//!   the whole buffer only when the pre-append buffer was untainted **and**
//!   full (or held the entire window): a fully-certified full buffer is the
//!   exact top-`(k + slack)` of the window, so every absent window row ranks
//!   behind all of its members and can never climb into the refilled prefix.
//!   After a partial eviction drain the buffer is short, and rows it refused
//!   earlier were only ever compared against the *old full* buffer — they may
//!   beat freshly appended rows, so the certified prefix must stay at its
//!   pre-append length until a drain-triggered re-scan restores it. An
//!   eviction shrinks
//!   `valid` by the members it removed from the certified prefix. Only when
//!   a query's certified prefix drops below `min(k, window)` — its buffer
//!   *drained* — is that one query re-scanned against the surviving window
//!   (pruned through the persistent window index on clustered backends):
//!   eviction costs `O(buffers) + O(affected queries × window)`, never a
//!   full rebuild. On clustered backends the evicted rows leave the
//!   [`ClusteredIndex`] cluster buffers and the int8 shadow metadata in
//!   place ([`ClusteredIndex::evict_rows`]), so `resident_bytes` shrinks
//!   truthfully with the window.
//!
//! The state is bit-identical to a cold build at every point: after any
//! sequence of appends, [`IncrementalTopK::table`] equals
//! [`EvalEngine::topk`] over the consumed prefix (pinned by
//! `tests/proptest_incremental.rs` across metrics, `k`, batch shapes,
//! backends, and interleaved relabels), because every distance flows through
//! the same [`MetricKernel`] expressions and the same lexicographic
//! `(distance, index)` admission as the cold path. With eviction the same
//! contract holds at every *window position*: the k-prefix table equals a
//! cold fold over the surviving window at its global offset (pinned by
//! `tests/proptest_eviction.rs`, including the buffer-drain re-scan path).

use crate::clustered::{ClusteredIndex, EvalBackend, PruneStats};
use crate::engine::{EvalEngine, NeighborTable, TopKState};
use crate::kernel::MetricKernel;
use crate::metric::Metric;
use crate::quantized::AffineQuantizer;
use snoopy_linalg::kmeans::{assign_to_centroids, lloyd_kmeans};
use snoopy_linalg::{DatasetView, LabeledView, Matrix};

/// Default re-partition growth threshold of the clustered append backend:
/// once the state holds this many times the rows of its last k-means
/// partition, the next append re-runs Lloyd's over everything (fresh
/// centroids and radii restore pruning power). Between partitions, appended
/// rows are assigned to the existing centroids in `O(batch × nlist × d)`.
///
/// Pinned at 2.0 by the `repartition_cases` sweep in `BENCH_knn.json`,
/// which replays a *drifting* append stream (every batch's blob means walk
/// by one unit per round, so the partition built on early rounds goes stale
/// against later ones — the adversarial case for any re-partition trigger;
/// single-core tiny scale, 4k rows, d = 32, quantized backend). Under
/// drift the settings finally separate on pruning power, not just
/// wall-clock: growth 1.5 re-clustered 5× and held a 95.3 % cumulative row
/// prune, 2.0 re-clustered 4× for 94.7 %, growth 3 re-clustered only 2×
/// and gave up four points (90.9 %), and the
/// [`RepartitionPolicy::PruneRate`] trigger — which looked free on the old
/// stationary fixture — re-clustered once and let the stale partition
/// decay to a 74.2 % prune, because a partition that still prunes "well
/// enough" this round keeps chasing a distribution that has already moved.
/// Growth(2.0) therefore survives as the default: it matches the
/// every-1.5× prune rate to within a point at lower re-cluster cost, and
/// its size proxy bounds staleness without assuming past prune rates
/// predict the next batch. Choose `PruneRate` only when the stream is
/// known stationary.
pub const REPARTITION_GROWTH: f64 = 2.0;

/// When the clustered append backend re-runs Lloyd's over everything it has
/// consumed, instead of assigning new rows to the stale centroids. Both
/// triggers are heuristics over *speed* — stale partitions only cost
/// pruning power, never correctness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepartitionPolicy {
    /// Re-partition once the row count reaches `factor ×` the rows at the
    /// last partition (the classic amortisation argument; factors ≤ 1 make
    /// every append re-partition).
    Growth(f64),
    /// Re-partition when the *previous* clustered append's row prune rate
    /// fell below `min_row_prune` — a direct measurement of bound
    /// staleness instead of a size proxy. No growth backstop: a partition
    /// that keeps pruning well is kept indefinitely.
    PruneRate {
        /// Row prune rate (`PruneStats::row_prune_rate` of one append)
        /// below which the next append re-partitions.
        min_row_prune: f64,
    },
}

impl Default for RepartitionPolicy {
    /// The bench-tuned default: [`RepartitionPolicy::Growth`] at
    /// [`REPARTITION_GROWTH`].
    fn default() -> Self {
        RepartitionPolicy::Growth(REPARTITION_GROWTH)
    }
}

/// Iteration cap for the state's internal k-means runs (same rationale as
/// the one-shot clustered index: convergence only affects pruning power).
const KMEANS_MAX_ITERS: usize = 16;

/// Seed for the state's internal k-means runs — deterministic per state so
/// appends are byte-for-byte reproducible.
const KMEANS_SEED: u64 = 0x1c2e_5eed;

/// The persistent partition of the clustered append backend: all rows that
/// were folded through the clustered path (append order, global index =
/// buffer row), plus the centroids of the last full partition.
#[derive(Debug, Clone)]
struct ClusteredAppendState {
    /// Requested cluster count (clamped to the row count at each partition).
    nlist: usize,
    /// Whether per-batch indexes carry the int8 shadow (from
    /// `EvalBackend::Clustered { quantize }`).
    quantize: bool,
    /// When to re-run Lloyd's over everything consumed.
    policy: RepartitionPolicy,
    /// All rows routed through the clustered path so far, append order.
    data: Vec<f32>,
    cols: usize,
    /// Centroids of the last full k-means partition (empty before the first).
    centroids: Matrix,
    /// Row count at the last full partition (re-partition trigger).
    rows_at_partition: usize,
    /// Full k-means partitions run so far (bench/diagnostic counter).
    repartitions: usize,
    /// The frozen per-dimension affine of the last partition — every batch
    /// until the next re-partition is encoded against it, so the int8
    /// bounds stay valid without a per-batch re-fit (out-of-range rows are
    /// clamped and carry a larger reconstruction radius).
    quantizer: Option<AffineQuantizer>,
    /// Row prune rate of the previous clustered append (drives
    /// [`RepartitionPolicy::PruneRate`]).
    last_row_prune: Option<f64>,
    /// Global training index of `data`'s row 0 — 0 until eviction drains
    /// the buffer's front.
    base: usize,
    /// Rows appended since the last full partition. The growth trigger
    /// compares `rows_at_partition + appended_since` (the *virtual* total,
    /// which ignores evictions) against the factor — identical to the row
    /// count for pure-append streams, but still firing periodically under a
    /// constant-size sliding window, where the real total never grows.
    appended_since: usize,
    /// Centroid-assignment distance pairs spent on Lloyd's iterations and
    /// per-batch assignments, accumulated across re-partitions (never
    /// reset) — the re-cluster side of the incremental cost ledger that
    /// `folded_pairs` (kernel pairs only) does not see.
    partition_pairs: u64,
    /// Whether to maintain [`ClusteredAppendState::window_index`] (set when
    /// the owner enabled eviction).
    track_window: bool,
    /// Persistent pruned index over the rows of the last full partition —
    /// the structure evictions compact in place and affected-query re-scans
    /// fold through. `None` until the first partition with `track_window`,
    /// or after eviction emptied it.
    window_index: Option<ClusteredIndex>,
    /// Global training index of `window_index`'s build-local row 0.
    index_base: usize,
    /// Global end (exclusive) of the rows `window_index` covered at build
    /// time; rows `[indexed_end, consumed)` are the unindexed tail a
    /// re-scan folds exhaustively.
    indexed_end: usize,
}

impl ClusteredAppendState {
    fn new(nlist: usize, quantize: bool, policy: RepartitionPolicy, cols: usize, base: usize) -> Self {
        Self {
            nlist,
            quantize,
            policy,
            data: Vec::new(),
            cols,
            centroids: Matrix::zeros(0, cols),
            rows_at_partition: 0,
            repartitions: 0,
            quantizer: None,
            last_row_prune: None,
            base,
            appended_since: 0,
            partition_pairs: 0,
            track_window: false,
            window_index: None,
            index_base: 0,
            indexed_end: 0,
        }
    }

    fn rows(&self) -> usize {
        self.data.len() / self.cols.max(1)
    }

    /// Whether the policy calls for a fresh full partition.
    fn repartition_due(&self) -> bool {
        if self.centroids.rows() == 0 {
            return true;
        }
        match self.policy {
            RepartitionPolicy::Growth(factor) => {
                let virtual_total = self.rows_at_partition + self.appended_since;
                virtual_total as f64 >= factor * self.rows_at_partition as f64
            }
            RepartitionPolicy::PruneRate { min_row_prune } => {
                self.last_row_prune.is_some_and(|rate| rate < min_row_prune)
            }
        }
    }

    /// Grows the buffer by `batch`, re-partitions if due, and returns the
    /// per-batch pruned index (batch rows grouped under the current
    /// centroids, int8 shadow attached when quantizing) ready to fold into
    /// the query states.
    fn grow_and_index(
        &mut self,
        batch: DatasetView<'_>,
        metric: Metric,
        engine: EvalEngine,
    ) -> ClusteredIndex {
        self.data.extend_from_slice(batch.data());
        self.appended_since += batch.rows();
        let total = self.rows();
        let assignments = if self.repartition_due() {
            let all = DatasetView::from_raw(&self.data, total, self.cols);
            let km = lloyd_kmeans(all, self.nlist, KMEANS_MAX_ITERS, KMEANS_SEED, engine.threads());
            self.partition_pairs += (km.iterations * total * km.centroids.rows()) as u64;
            self.centroids = km.centroids;
            self.rows_at_partition = total;
            self.appended_since = 0;
            self.repartitions += 1;
            // Re-fit the affine on the same pass — the only time the frozen
            // quantizer moves.
            self.quantizer = self.quantize.then(|| AffineQuantizer::fit(all));
            // The eviction path keeps a persistent pruned index over the
            // partitioned window so drained queries re-scan through
            // triangle-inequality bounds instead of exhaustively.
            if self.track_window {
                let mut wi =
                    ClusteredIndex::from_assignments(all, metric, &self.centroids, &km.assignments, engine);
                if let Some(q) = self.quantizer.clone() {
                    wi.quantize_with(q);
                }
                self.index_base = self.base;
                self.indexed_end = self.base + total;
                self.window_index = Some(wi);
            }
            // The batch occupies the tail of the just-partitioned buffer, so
            // its assignments come for free (a max_iters exit may leave them
            // one update step stale — valid bounds either way).
            km.assignments[total - batch.rows()..].to_vec()
        } else {
            self.partition_pairs += (batch.rows() * self.centroids.rows()) as u64;
            assign_to_centroids(batch, &self.centroids, engine.threads())
        };
        let mut index =
            ClusteredIndex::from_assignments(batch, metric, &self.centroids, &assignments, engine);
        if let Some(q) = self.quantizer.clone() {
            index.quantize_with(q);
        }
        index
    }

    /// Drops every retained row with a global index below `new_start`: the
    /// raw re-partition buffer drains from the front and the persistent
    /// window index compacts its cluster buffers and shadow metadata in
    /// place.
    fn evict_front(&mut self, new_start: usize) {
        let drop_rows = new_start.saturating_sub(self.base).min(self.rows());
        if drop_rows > 0 {
            self.data.drain(0..drop_rows * self.cols);
            self.base += drop_rows;
        }
        if let Some(wi) = self.window_index.as_mut() {
            let index_base = self.index_base;
            wi.evict_rows(|orig| index_base + orig < new_start);
            if wi.is_empty() {
                self.window_index = None;
            }
        }
    }
}

/// What one [`IncrementalTopK::evict_oldest`] call did: how many rows left
/// the window and how many queries' admission buffers drained below
/// `min(k, window)` and were re-scanned. The re-scan count is the cost
/// driver — eviction is `O(buffers + affected_queries × window)`, never a
/// rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvictReport {
    /// Rows actually evicted (requests are clamped to the window).
    pub rows_evicted: usize,
    /// Queries whose certified prefix drained and were re-scanned against
    /// the surviving window.
    pub affected_queries: usize,
}

/// The incremental top-k successor state: one bounded per-query top-k heap
/// per test/eval row, append-able batch by batch and relabel-able in place.
/// See the [module docs](self) for the design and cost model.
#[derive(Debug, Clone)]
pub struct IncrementalTopK {
    query_features: Matrix,
    query_labels: Vec<u32>,
    k: usize,
    engine: EvalEngine,
    backend: EvalBackend,
    /// When the clustered append backend re-runs Lloyd's (and re-fits the
    /// int8 affine) over everything consumed.
    policy: RepartitionPolicy,
    /// Query-side norm cache bound once at construction; the train side is
    /// re-bound per appended batch (allocation reused) on the exhaustive
    /// path.
    kernel: MetricKernel,
    /// One bounded top-k state per query, ascending `(distance, index)`.
    states: Vec<TopKState>,
    /// Labels of every consumed training row, indexed globally.
    train_labels: Vec<u32>,
    /// Error after each completed append: `(consumed rows, 1NN error)`.
    curve: Vec<(usize, f64)>,
    /// The clustered backend's persistent partition (`None` until the first
    /// clustered append).
    clustered: Option<ClusteredAppendState>,
    /// Pruning counters accumulated across clustered appends.
    prune_stats: PruneStats,
    /// Query–row distance pairs folded so far — the state's true incremental
    /// cost (an append adds `batch × queries` on the exhaustive path, the
    /// post-pruning count on the clustered one). This is what a bandit arm
    /// reports to the strategies instead of a rebuild-shaped estimate.
    folded_pairs: u64,
    /// `1 + max label ever appended or relabelled in` — sizes the vote
    /// buffer so [`IncrementalTopK::knn_error`] never scans the label
    /// arrays. Only grows; an oversized buffer cannot change a vote.
    label_bound: u32,
    /// Whether eviction is enabled ([`IncrementalTopK::with_eviction`]).
    eviction: bool,
    /// Extra admission-buffer capacity per query beyond `k` — buffers hold
    /// up to `k + slack` hits so evictions backfill from the slack tail.
    slack: usize,
    /// Global index of the first surviving training row; rows
    /// `[window_start, consumed)` form the window.
    window_start: usize,
    /// Per-query certified-exact prefix length of the admission buffer (see
    /// the [module docs](self) invariant). Empty unless eviction is enabled.
    valid: Vec<usize>,
    /// Retained copy of the surviving window's feature rows (append order,
    /// row 0 = global row `window_start`) — the raw material of
    /// affected-query re-scans. Empty unless eviction is enabled.
    window: Vec<f32>,
}

impl IncrementalTopK {
    /// Creates an empty state for a fixed test/eval split, retaining the
    /// best `k` neighbours per query (`k` clamped to ≥ 1).
    ///
    /// # Panics
    /// Panics if the split is empty or features/labels disagree.
    pub fn new(query_features: Matrix, query_labels: Vec<u32>, metric: Metric, k: usize) -> Self {
        assert_eq!(query_features.rows(), query_labels.len(), "query feature/label mismatch");
        assert!(!query_labels.is_empty(), "the incremental state needs a non-empty query split");
        let k = k.max(1);
        let mut kernel = MetricKernel::new(metric);
        kernel.bind_queries(query_features.view());
        let label_bound = query_labels.iter().copied().max().unwrap_or(0).saturating_add(1);
        Self {
            states: vec![TopKState::new(k); query_labels.len()],
            query_features,
            query_labels,
            k,
            engine: EvalEngine::parallel(),
            backend: EvalBackend::Exhaustive,
            policy: RepartitionPolicy::default(),
            kernel,
            train_labels: Vec::new(),
            curve: Vec::new(),
            clustered: None,
            prune_stats: PruneStats::default(),
            folded_pairs: 0,
            label_bound,
            eviction: false,
            slack: 0,
            window_start: 0,
            valid: Vec::new(),
            window: Vec::new(),
        }
    }

    /// Enables row eviction with `slack` extra admission-buffer slots per
    /// query (buffers hold up to `k + slack` hits; larger slack absorbs more
    /// evictions before a query's buffer drains and forces a re-scan). The
    /// state retains a copy of the surviving window's rows, and with a
    /// clustered backend additionally maintains a persistent pruned window
    /// index for affected-query re-scans.
    ///
    /// # Panics
    /// Panics if any rows were already appended — the window must be
    /// retained from the first row.
    pub fn with_eviction(mut self, slack: usize) -> Self {
        assert_eq!(self.consumed(), 0, "enable eviction before the first append");
        self.eviction = true;
        self.slack = slack;
        for s in &mut self.states {
            s.reset(self.k + slack);
        }
        self.valid = vec![0; self.states.len()];
        self
    }

    /// Cold full build over borrowed views — [`IncrementalTopK::new`]
    /// followed by one [`IncrementalTopK::append`] of the whole training
    /// split. This is the single constructor behind what used to be
    /// `IncrementalOneNn::{build, from_views}` and a finished
    /// `StreamedOneNn`.
    pub fn from_views(train: LabeledView<'_>, test: LabeledView<'_>, metric: Metric, k: usize) -> Self {
        let mut state = Self::new(test.features().to_matrix(), test.labels().to_vec(), metric, k);
        state.append(train.features(), train.labels());
        state
    }

    /// [`IncrementalTopK::from_views`] over raw feature/label parts.
    pub fn build<'a>(
        train_features: impl Into<DatasetView<'a>>,
        train_labels: &[u32],
        test_features: impl Into<DatasetView<'a>>,
        test_labels: &[u32],
        metric: Metric,
        k: usize,
    ) -> Self {
        let mut state = Self::new(test_features.into().to_matrix(), test_labels.to_vec(), metric, k);
        state.append(train_features.into(), train_labels);
        state
    }

    /// Replaces the evaluation engine (e.g. to force a serial reference run).
    pub fn with_engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Swaps the evaluation engine in place (used to re-widen a throttled
    /// arm once it runs alone).
    pub fn set_engine(&mut self, engine: EvalEngine) {
        self.engine = engine;
    }

    /// Selects the append backend. `Clustered` engages the persistent
    /// partition for every subsequent append of a prunable metric; cosine
    /// and `Exhaustive` fold through the tiled engine. Both paths are
    /// bit-identical.
    ///
    /// Memory note: the clustered path retains a copy of every row appended
    /// through it (`O(rows × d)`) — the raw material of future
    /// re-partitions. The exhaustive path retains nothing but labels and
    /// the per-query heaps.
    pub fn with_backend(mut self, backend: EvalBackend) -> Self {
        self.set_backend(backend);
        self
    }

    /// Swaps the append backend in place. A new `Clustered { nlist }` takes
    /// effect from the next append (re-partitions use the latest `nlist`);
    /// rows appended while the backend was exhaustive are not retroactively
    /// added to the partition — the centroids then cover only
    /// clustered-appended rows, which costs pruning power on later batches
    /// but never correctness (any assignment yields valid bounds).
    ///
    /// # Panics
    /// Panics when eviction is enabled and rows were already appended: the
    /// persistent window index requires the clustered buffer to cover the
    /// window contiguously, which a mid-stream backend switch would break.
    pub fn set_backend(&mut self, backend: EvalBackend) {
        assert!(
            !self.eviction || self.consumed() == 0 || backend == self.backend,
            "an eviction-enabled state cannot switch backends mid-stream"
        );
        self.backend = backend;
    }

    /// Selects when the clustered append backend re-partitions (default:
    /// the bench-tuned [`RepartitionPolicy::Growth`] at
    /// [`REPARTITION_GROWTH`]). Takes effect from the next append.
    pub fn with_repartition_policy(mut self, policy: RepartitionPolicy) -> Self {
        self.set_repartition_policy(policy);
        self
    }

    /// Swaps the re-partition policy in place (applies from the next
    /// append; the current partition is kept until the new policy fires).
    pub fn set_repartition_policy(&mut self, policy: RepartitionPolicy) {
        self.policy = policy;
        if let Some(state) = self.clustered.as_mut() {
            state.policy = policy;
        }
    }

    /// Full k-means re-partitions the clustered append backend has run (0
    /// on the exhaustive path) — the cost side of the re-partition policy
    /// trade-off.
    pub fn repartitions(&self) -> usize {
        self.clustered.as_ref().map_or(0, |s| s.repartitions)
    }

    /// The metric the state evaluates.
    pub fn metric(&self) -> Metric {
        self.kernel.metric()
    }

    /// The per-query neighbour capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of training rows consumed so far.
    pub fn consumed(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of query (test/eval) rows.
    pub fn test_len(&self) -> usize {
        self.query_labels.len()
    }

    /// The recorded convergence curve: `(consumed rows, 1NN error)` after
    /// every append.
    pub fn curve(&self) -> &[(usize, f64)] {
        &self.curve
    }

    /// Pruning counters accumulated by clustered appends (all zeros on the
    /// exhaustive path).
    pub fn prune_stats(&self) -> PruneStats {
        self.prune_stats
    }

    /// Query–row distance pairs folded so far — the true incremental kernel
    /// cost of this state (monotone; an append adds its post-pruning pair
    /// count).
    pub fn folded_pairs(&self) -> u64 {
        self.folded_pairs
    }

    /// Current (possibly cleaned) training labels, global index order
    /// (evicted rows' labels are retained — globally indexed, never
    /// consulted again).
    pub fn train_labels(&self) -> &[u32] {
        &self.train_labels
    }

    /// Whether [`IncrementalTopK::with_eviction`] enabled row eviction.
    pub fn eviction_enabled(&self) -> bool {
        self.eviction
    }

    /// Extra admission-buffer slots per query beyond `k` (0 unless eviction
    /// is enabled).
    pub fn slack(&self) -> usize {
        self.slack
    }

    /// Global index of the first surviving training row — rows
    /// `[window_start, consumed)` form the current window.
    pub fn window_start(&self) -> usize {
        self.window_start
    }

    /// Number of surviving training rows in the window (equals
    /// [`IncrementalTopK::consumed`] until the first eviction).
    pub fn window_len(&self) -> usize {
        self.train_labels.len() - self.window_start
    }

    /// Centroid-assignment distance pairs spent on the clustered backend's
    /// Lloyd's runs and per-batch assignments, accumulated across every
    /// re-partition (never reset) — the re-cluster side of the incremental
    /// cost ledger that [`IncrementalTopK::folded_pairs`] (exact kernel
    /// pairs) does not include. 0 on the exhaustive path.
    pub fn partition_pairs(&self) -> u64 {
        self.clustered.as_ref().map_or(0, |s| s.partition_pairs)
    }

    /// Resident heap footprint of the persistent window index (`None` on
    /// exhaustive backends or before the first clustered re-partition) —
    /// how the eviction path's memory claims are measured, not asserted.
    pub fn window_index_bytes(&self) -> Option<crate::clustered::ResidentBytes> {
        self.clustered.as_ref().and_then(|s| s.window_index.as_ref()).map(|wi| wi.resident_bytes())
    }

    /// Whether a clustered append backend should handle this batch: the
    /// backend must be clustered and the metric triangle-prunable (cosine
    /// transparently falls back to the exhaustive fold).
    fn clustered_applies(&self) -> bool {
        matches!(self.backend, EvalBackend::Clustered { .. }) && EvalBackend::prunable(self.metric())
    }

    /// Appends one batch of training rows whose global indices start at
    /// [`IncrementalTopK::consumed`], folding them into every query's top-k
    /// state — `O(batch × queries)` kernel work (less under clustered
    /// pruning) — and records the new 1NN error on the curve. Returns the
    /// updated error.
    ///
    /// An empty batch is a complete no-op (no curve point, no re-partition
    /// check, no counters) — it returns the current error unchanged.
    ///
    /// # Panics
    /// Panics on feature/label count or dimensionality mismatches.
    pub fn append<'b>(&mut self, batch_features: impl Into<DatasetView<'b>>, batch_labels: &[u32]) -> f64 {
        let batch = batch_features.into();
        assert_eq!(batch.rows(), batch_labels.len(), "batch feature/label mismatch");
        assert_eq!(
            batch.cols(),
            self.query_features.cols(),
            "batch dimensionality differs from the query split"
        );
        if batch.is_empty() {
            // A degenerate batch must not push a duplicate curve point, run
            // the growth-ratio check (a spurious re-partition), or feed a
            // zero-row prune rate into the PruneRate trigger.
            return self.error();
        }
        let offset = self.train_labels.len();
        // A pure append re-certifies the buffer only when it was untainted
        // (certified prefix == whole buffer) AND full — i.e. the exact
        // top-`k + slack` of the window, whose absent rows can never climb
        // into the refilled prefix — or held the entire window. A buffer left
        // short by a partial eviction drain keeps its prefix length: rows it
        // refused pre-drain were never compared against the fresh batch (see
        // the module invariant).
        let recertify: Vec<bool> = if self.eviction {
            let cap = self.k + self.slack;
            let window_before = self.train_labels.len() - self.window_start;
            self.window.extend_from_slice(batch.data());
            self.states
                .iter()
                .zip(&self.valid)
                .map(|(s, &v)| {
                    let len = s.hits().len();
                    v == len && (len == cap || len == window_before)
                })
                .collect()
        } else {
            Vec::new()
        };
        if self.clustered_applies() {
            let (nlist, quantize) = match self.backend {
                EvalBackend::Clustered { nlist, quantize } => (nlist, quantize),
                EvalBackend::Exhaustive => unreachable!("clustered_applies checked the variant"),
            };
            let cols = batch.cols();
            let policy = self.policy;
            let track_window = self.eviction;
            let state = self
                .clustered
                .get_or_insert_with(|| ClusteredAppendState::new(nlist, quantize, policy, cols, offset));
            // Track the backend's current knobs so a set_backend retune
            // takes effect at the next re-partition, not never.
            state.nlist = nlist;
            state.quantize = quantize;
            state.policy = policy;
            state.track_window = track_window;
            let index = state.grow_and_index(batch, self.kernel.metric(), self.engine);
            let stats = index.update_topk(self.query_features.view(), offset, &mut self.states, None);
            state.last_row_prune = Some(stats.row_prune_rate());
            self.folded_pairs += stats.rows_scanned as u64;
            self.prune_stats.merge(&stats);
        } else {
            self.kernel.bind_train(batch);
            self.engine.update_topk(
                self.query_features.view(),
                &self.kernel,
                batch,
                offset,
                &mut self.states,
                None,
            );
            self.folded_pairs += (batch.rows() * self.query_features.rows()) as u64;
        }
        if self.eviction {
            for (q, ok) in recertify.iter().enumerate() {
                if *ok {
                    self.valid[q] = self.states[q].hits().len();
                }
            }
        }
        self.train_labels.extend_from_slice(batch_labels);
        for &y in batch_labels {
            self.label_bound = self.label_bound.max(y.saturating_add(1));
        }
        let err = self.error();
        self.curve.push((self.train_labels.len(), err));
        err
    }

    /// Evicts the `rows` oldest surviving training rows from the window
    /// (clamped to the window size), popping them out of every query's
    /// admission buffer with backfill from the slack tail. Only queries
    /// whose certified prefix drains below `min(k, window)` are re-scanned
    /// against the surviving window — pruned through the persistent window
    /// index on clustered backends — so the cost is `O(buffers)` plus
    /// `O(affected queries × window scan)`, never a rebuild. On clustered
    /// backends the evicted rows also leave the retained partition buffers,
    /// the [`ClusteredIndex`] cluster buffers, and the int8 shadow metadata
    /// ([`ClusteredIndex::resident_bytes`] shrinks truthfully).
    ///
    /// Evicted rows' labels stay in [`IncrementalTopK::train_labels`] (they
    /// are globally indexed and never consulted again); all error reads and
    /// [`IncrementalTopK::table`] reflect only the surviving window.
    ///
    /// # Panics
    /// Panics unless [`IncrementalTopK::with_eviction`] enabled eviction.
    pub fn evict_oldest(&mut self, rows: usize) -> EvictReport {
        assert!(self.eviction, "call with_eviction(slack) before evicting rows");
        let rows = rows.min(self.consumed() - self.window_start);
        if rows == 0 {
            return EvictReport::default();
        }
        let new_start = self.window_start + rows;
        let cols = self.query_features.cols();
        self.window.drain(0..rows * cols);
        if let Some(state) = self.clustered.as_mut() {
            state.evict_front(new_start);
        }
        let need = self.k.min(self.consumed() - new_start);
        let mut affected = Vec::new();
        for (q, s) in self.states.iter_mut().enumerate() {
            let (removed_prefix, _) = s.evict_below(new_start, self.valid[q]);
            self.valid[q] -= removed_prefix;
            if self.valid[q] < need {
                affected.push(q);
            }
        }
        self.window_start = new_start;
        if !affected.is_empty() {
            self.rescan_queries(&affected);
        }
        EvictReport { rows_evicted: rows, affected_queries: affected.len() }
    }

    /// Rebuilds the admission buffers of the given queries from the
    /// surviving window: a pruned fold through the persistent window index
    /// where one exists, then an exhaustive fold of the unindexed tail. The
    /// rebuilt buffers are exact top-`min(k + slack, window)` — certified in
    /// full.
    fn rescan_queries(&mut self, affected: &[usize]) {
        let cols = self.query_features.cols();
        let mut qdata = Vec::with_capacity(affected.len() * cols);
        for &q in affected {
            qdata.extend_from_slice(self.query_features.row(q));
        }
        let queries = DatasetView::from_raw(&qdata, affected.len(), cols);
        let cap = self.k + self.slack;
        let mut sub = vec![TopKState::new(cap); affected.len()];
        // Pruned pass over the indexed part of the window.
        let mut tail_start = self.window_start;
        let mut index_stats: Option<PruneStats> = None;
        if let Some(state) = self.clustered.as_ref() {
            if let Some(wi) = state.window_index.as_ref() {
                let stats = wi.update_topk(queries, state.index_base, &mut sub, None);
                tail_start = state.indexed_end.max(self.window_start);
                index_stats = Some(stats);
            }
        }
        if let Some(stats) = index_stats {
            self.folded_pairs += stats.rows_scanned as u64;
            self.prune_stats.merge(&stats);
        }
        // Exhaustive pass over the unindexed tail (the whole window on
        // exhaustive/cosine paths).
        if tail_start < self.consumed() {
            let lo = (tail_start - self.window_start) * cols;
            let tail_rows = self.consumed() - tail_start;
            let tail = DatasetView::from_raw(&self.window[lo..], tail_rows, cols);
            let mut kernel = MetricKernel::new(self.metric());
            kernel.bind_queries(queries);
            kernel.bind_train(tail);
            self.engine.update_topk(queries, &kernel, tail, tail_start, &mut sub, None);
            self.folded_pairs += (tail_rows * affected.len()) as u64;
        }
        for (i, &q) in affected.iter().enumerate() {
            self.valid[q] = sub[i].hits().len();
            self.states[q] = std::mem::replace(&mut sub[i], TopKState::new(1));
        }
    }

    /// Updates the label of a training row (e.g. after cleaning). Features
    /// are untouched, so no neighbour moves — the next error read is a pure
    /// `O(test)` refresh.
    pub fn relabel_train(&mut self, index: usize, new_label: u32) {
        self.train_labels[index] = new_label;
        self.label_bound = self.label_bound.max(new_label.saturating_add(1));
    }

    /// Updates the label of a test/eval row.
    pub fn relabel_test(&mut self, index: usize, new_label: u32) {
        self.query_labels[index] = new_label;
        self.label_bound = self.label_bound.max(new_label.saturating_add(1));
    }

    /// Applies a batch of training-label updates.
    pub fn relabel_train_batch(&mut self, updates: &[(usize, u32)]) {
        for &(i, y) in updates {
            self.relabel_train(i, y);
        }
    }

    /// Applies a batch of test-label updates.
    pub fn relabel_test_batch(&mut self, updates: &[(usize, u32)]) {
        for &(i, y) in updates {
            self.relabel_test(i, y);
        }
    }

    /// Synchronises all labels at once (e.g. after a cleaning round applied
    /// to the underlying dataset) and returns the refreshed 1NN error.
    ///
    /// # Panics
    /// Panics if either label count changed.
    pub fn set_labels(&mut self, train_labels: &[u32], test_labels: &[u32]) -> f64 {
        assert_eq!(train_labels.len(), self.train_labels.len(), "train label count changed");
        assert_eq!(test_labels.len(), self.query_labels.len(), "test label count changed");
        self.train_labels.copy_from_slice(train_labels);
        self.query_labels.copy_from_slice(test_labels);
        for &y in train_labels.iter().chain(test_labels) {
            self.label_bound = self.label_bound.max(y.saturating_add(1));
        }
        self.error()
    }

    /// Current 1NN error under the current labels — one `O(test)` pass.
    /// Before any append every prediction counts as wrong.
    pub fn error(&self) -> f64 {
        let wrong = self
            .states
            .iter()
            .zip(&self.query_labels)
            .filter(|(s, &y)| s.hits().first().is_none_or(|h| self.train_labels[h.index] != y))
            .count();
        wrong as f64 / self.query_labels.len() as f64
    }

    /// Current kNN majority-vote error over the first `k` stored neighbours
    /// of every query (`k` clamped to the stored count; vote ties resolve to
    /// the smallest class id) — the k-prefix generalisation of the 1NN
    /// refresh, still `O(test · k)` per read. Identical to
    /// [`NeighborTable::knn_error`] on a snapshot of this state.
    ///
    /// # Panics
    /// Panics if a consulted training label is `≥ num_classes` and was never
    /// seen by an append/relabel (the vote buffer is sized by the larger of
    /// the two).
    pub fn knn_error(&self, k: usize, num_classes: usize) -> f64 {
        if self.train_labels.is_empty() {
            return 1.0;
        }
        let mut votes = vec![0usize; num_classes.max(self.label_bound as usize).max(1)];
        let wrong = self
            .states
            .iter()
            .zip(&self.query_labels)
            .filter(|(s, &y)| {
                votes.iter_mut().for_each(|v| *v = 0);
                let hits = s.hits();
                // Clamp the vote prefix to the state's capacity `k` (an
                // eviction slack tail is uncertified and must never vote)
                // and to the rows actually stored — early in a stream a
                // buffer holds fewer than `k` hits.
                for hit in &hits[..k.min(self.k).min(hits.len())] {
                    votes[self.train_labels[hit.index] as usize] += 1;
                }
                let mut best = 0usize;
                for (c, &v) in votes.iter().enumerate() {
                    if v > votes[best] {
                        best = c;
                    }
                }
                best as u32 != y
            })
            .count();
        wrong as f64 / self.query_labels.len() as f64
    }

    /// Snapshots the state into a query-major [`NeighborTable`] — the
    /// neighbour handshake every downstream consumer (the five Bayes-error
    /// estimators included) speaks. Bit-identical to [`EvalEngine::topk`]
    /// over the consumed rows; empty (`k() == 0`) before any append. With
    /// eviction the snapshot is the certified `min(k, window)`-prefix of
    /// every admission buffer — bit-identical to a cold fold over the
    /// surviving window at its global offset.
    pub fn table(&self) -> NeighborTable {
        if self.eviction {
            let per_query = self.k.min(self.consumed() - self.window_start);
            NeighborTable::from_state_prefixes(&self.states, per_query)
        } else {
            NeighborTable::from_states(&self.states)
        }
    }

    /// The nearest training index currently assigned to each query
    /// (`usize::MAX` before any append).
    pub fn nearest_train_indices(&self) -> Vec<usize> {
        self.states.iter().map(|s| s.hits().first().map_or(usize::MAX, |h| h.index)).collect()
    }

    /// The nearest training label currently assigned to each query
    /// (`u32::MAX` before any append).
    pub fn nearest_train_labels(&self) -> Vec<u32> {
        self.states
            .iter()
            .map(|s| s.hits().first().map_or(u32::MAX, |h| self.train_labels[h.index]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;
    use crate::engine::knn_reference;

    /// A two-blob labelled task split into train/test, built on the shared
    /// `snoopy-testutil` blob fixture (rows alternate blobs round-robin, so
    /// the label is the row's parity).
    fn toy_task(n_train: usize) -> (Matrix, Vec<u32>, Matrix, Vec<u32>) {
        let n_test = 60;
        let all = snoopy_testutil::blob_cloud(77, n_train + n_test, 2, 2, 4.0, 0.3);
        let (train, test) = all.view().split_at(n_train);
        let train_labels = (0..n_train).map(|i| (i % 2) as u32).collect();
        let test_labels = (0..n_test).map(|i| ((n_train + i) % 2) as u32).collect();
        (train.to_matrix(), train_labels, test.to_matrix(), test_labels)
    }

    fn noisy_task() -> (Matrix, Vec<u32>, Vec<u32>, Matrix, Vec<u32>, Vec<u32>) {
        // Two clusters; 20% of training labels and 10% of test labels flipped.
        let n = 100;
        let mut train_rows = Vec::new();
        let mut clean_train = Vec::new();
        for i in 0..n {
            let c = (i % 2) as u32;
            let base = if c == 0 { 0.0 } else { 5.0 };
            train_rows.push(vec![base + (i as f32 * 0.17).sin() * 0.3, (i as f32 * 0.31).cos() * 0.3]);
            clean_train.push(c);
        }
        let mut noisy_train = clean_train.clone();
        for i in (0..n).step_by(5) {
            noisy_train[i] = 1 - noisy_train[i];
        }
        let m = 40;
        let mut test_rows = Vec::new();
        let mut clean_test = Vec::new();
        for i in 0..m {
            let c = (i % 2) as u32;
            let base = if c == 0 { 0.0 } else { 5.0 };
            test_rows.push(vec![base + (i as f32 * 0.41).sin() * 0.3, (i as f32 * 0.13).cos() * 0.3]);
            clean_test.push(c);
        }
        let mut noisy_test = clean_test.clone();
        for i in (0..m).step_by(10) {
            noisy_test[i] = 1 - noisy_test[i];
        }
        (
            Matrix::from_rows(&train_rows),
            noisy_train,
            clean_train,
            Matrix::from_rows(&test_rows),
            noisy_test,
            clean_test,
        )
    }

    #[test]
    fn streaming_matches_full_index_at_every_prefix() {
        let (train_x, train_y, test_x, test_y) = toy_task(200);
        let train = LabeledView::new(&train_x, &train_y).with_classes(2);
        let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 1);
        let mut consumed = 0;
        for batch in train.batches(50) {
            let err = state.append(batch.features(), batch.labels());
            consumed += batch.len();
            let full = BruteForceIndex::from_view(train.prefix(consumed), Metric::SquaredEuclidean)
                .one_nn_error(&test_x, &test_y);
            assert!((err - full).abs() < 1e-12, "prefix {consumed}: incremental {err} vs full {full}");
        }
        assert_eq!(state.consumed(), 200);
        assert_eq!(state.curve().len(), 4);
        assert_eq!(state.folded_pairs(), 200 * 60);
    }

    #[test]
    fn error_before_any_append_is_one_and_table_is_empty() {
        let (_, _, test_x, test_y) = toy_task(10);
        let state = IncrementalTopK::new(test_x, test_y, Metric::Euclidean, 3);
        assert_eq!(state.error(), 1.0);
        assert_eq!(state.knn_error(3, 2), 1.0);
        assert_eq!(state.table().k(), 0, "empty before any append");
        assert!(state.nearest_train_indices().iter().all(|&i| i == usize::MAX));
        assert!(state.nearest_train_labels().iter().all(|&y| y == u32::MAX));
    }

    #[test]
    fn appended_table_equals_cold_topk_for_every_k() {
        let (train_x, train_y, test_x, test_y) = toy_task(90);
        for metric in Metric::all() {
            for k in [1usize, 3, 10, 90] {
                let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), metric, k);
                for batch in LabeledView::new(&train_x, &train_y).batches(27) {
                    state.append(batch.features(), batch.labels());
                }
                let cold = EvalEngine::parallel().topk(train_x.view(), test_x.view(), metric, k);
                assert_eq!(state.table(), cold, "metric {} k {k}", metric.name());
                assert_eq!(state.table(), knn_reference(train_x.view(), test_x.view(), metric, k));
            }
        }
    }

    #[test]
    fn incremental_equals_full_recompute_after_each_cleaning_step() {
        let (tx, ty, clean_ty, qx, qy, clean_qy) = noisy_task();
        let mut state = IncrementalTopK::build(&tx, &ty, &qx, &qy, Metric::SquaredEuclidean, 3);
        let mut cur_ty = ty.clone();
        let mut cur_qy = qy.clone();
        // Clean one dirty train label and one dirty test label at a time; the
        // 1NN error AND the k=3 vote error must track a cold rebuild.
        for i in 0..cur_ty.len() {
            if cur_ty[i] != clean_ty[i] {
                cur_ty[i] = clean_ty[i];
                state.relabel_train(i, clean_ty[i]);
                let cold = BruteForceIndex::new(&tx, &cur_ty, 2, Metric::SquaredEuclidean);
                let full = cold.one_nn_error(&qx, &cur_qy);
                assert!((state.error() - full).abs() < 1e-12, "train clean step {i}");
                let full_k3 = cold.knn_error(&qx, &cur_qy, 3);
                assert!((state.knn_error(3, 2) - full_k3).abs() < 1e-12, "train clean step {i} (k=3)");
            }
        }
        for i in 0..cur_qy.len() {
            if cur_qy[i] != clean_qy[i] {
                cur_qy[i] = clean_qy[i];
                state.relabel_test(i, clean_qy[i]);
                let full = BruteForceIndex::new(&tx, &cur_ty, 2, Metric::SquaredEuclidean)
                    .one_nn_error(&qx, &cur_qy);
                assert!((state.error() - full).abs() < 1e-12, "test clean step {i}");
            }
        }
        // Fully cleaned, well separated clusters: error is zero.
        assert_eq!(state.error(), 0.0);
        assert_eq!(state.knn_error(3, 2), 0.0);
    }

    #[test]
    fn batch_relabels_and_set_labels_apply_all_updates() {
        let (tx, ty, clean_ty, qx, qy, clean_qy) = noisy_task();
        let mut state = IncrementalTopK::build(&tx, &ty, &qx, &qy, Metric::SquaredEuclidean, 1);
        let before = state.error();
        let updates: Vec<(usize, u32)> = ty
            .iter()
            .enumerate()
            .filter(|(i, &y)| y != clean_ty[*i])
            .map(|(i, _)| (i, clean_ty[i]))
            .collect();
        state.relabel_train_batch(&updates);
        let full = BruteForceIndex::new(&tx, &clean_ty, 2, Metric::SquaredEuclidean).one_nn_error(&qx, &qy);
        assert!((state.error() - full).abs() < 1e-12);
        state.set_labels(&clean_ty, &clean_qy);
        assert!(state.error() < before, "cleaning labels reduces error on average");
    }

    #[test]
    fn from_views_matches_build_and_batched_appends() {
        let (tx, ty, _, qx, qy, _) = noisy_task();
        let train = LabeledView::new(&tx, &ty).with_classes(2);
        let test = LabeledView::new(&qx, &qy).with_classes(2);
        let a = IncrementalTopK::from_views(train, test, Metric::SquaredEuclidean, 2);
        let b = IncrementalTopK::build(&tx, &ty, &qx, &qy, Metric::SquaredEuclidean, 2);
        let mut c = IncrementalTopK::new(qx.clone(), qy.clone(), Metric::SquaredEuclidean, 2);
        let view = tx.view();
        c.append(view.slice_rows(0, 60), &ty[..60]);
        c.append(view.slice_rows(60, tx.rows()), &ty[60..]);
        assert_eq!(a.table(), b.table());
        assert_eq!(a.table(), c.table());
        assert_eq!(a.error().to_bits(), c.error().to_bits());
    }

    #[test]
    fn nearest_indices_are_global() {
        let (train_x, train_y, test_x, test_y) = toy_task(100);
        let mut state = IncrementalTopK::new(test_x, test_y, Metric::SquaredEuclidean, 1);
        let view = train_x.view();
        state.append(view.slice_rows(0, 50), &train_y[..50]);
        state.append(view.slice_rows(50, 100), &train_y[50..]);
        let idx = state.nearest_train_indices();
        assert!(idx.iter().all(|&i| i < 100));
        assert!(idx.iter().any(|&i| i >= 50), "some neighbours should come from the second batch");
    }

    #[test]
    fn cosine_appends_match_full_recompute() {
        let (train_x, train_y, test_x, test_y) = toy_task(90);
        let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::Cosine, 1);
        for batch in LabeledView::new(&train_x, &train_y).batches(27) {
            state.append(batch.features(), batch.labels());
        }
        let full = BruteForceIndex::new(&train_x, &train_y, 2, Metric::Cosine).one_nn_error(&test_x, &test_y);
        assert!((state.error() - full).abs() < 1e-12);
    }

    #[test]
    fn clustered_backend_is_bit_identical_and_repartitions_on_growth() {
        let (train_x, train_y, test_x, test_y) = toy_task(180);
        let mut exhaustive =
            IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 4);
        let mut clustered = IncrementalTopK::new(test_x, test_y, Metric::SquaredEuclidean, 4)
            .with_backend(EvalBackend::clustered(3));
        for batch in LabeledView::new(&train_x, &train_y).batches(45) {
            let a = exhaustive.append(batch.features(), batch.labels());
            let b = clustered.append(batch.features(), batch.labels());
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(exhaustive.table(), clustered.table());
        }
        let stats = clustered.prune_stats();
        assert_eq!(stats.queries, 60 * 4, "one pruned pass per test point per batch");
        assert_eq!(exhaustive.prune_stats(), PruneStats::default());
        assert!(clustered.folded_pairs() <= exhaustive.folded_pairs());
        // 4 batches of 45: partitions at 45 (first) and 90/180 (2x growth):
        // the internal state must have re-partitioned past the threshold.
        let inner = clustered.clustered.as_ref().expect("clustered state engaged");
        assert_eq!(inner.rows(), 180);
        assert!(inner.rows_at_partition >= 90, "growth threshold should have re-partitioned");
    }

    #[test]
    fn set_backend_retunes_nlist_for_future_repartitions() {
        let (train_x, train_y, test_x, test_y) = toy_task(160);
        let mut state = IncrementalTopK::new(test_x.clone(), test_y, Metric::SquaredEuclidean, 2)
            .with_backend(EvalBackend::clustered(2));
        let view = train_x.view();
        state.append(view.slice_rows(0, 40), &train_y[..40]);
        assert_eq!(state.clustered.as_ref().unwrap().nlist, 2);
        // Retune: the next append must adopt the new nlist, and the 2x
        // growth re-partition (40 -> 160 rows) must run with it.
        state.set_backend(EvalBackend::clustered(8));
        state.append(view.slice_rows(40, 160), &train_y[40..]);
        let inner = state.clustered.as_ref().unwrap();
        assert_eq!(inner.nlist, 8);
        assert_eq!(inner.rows_at_partition, 160, "growth threshold re-partitioned");
        assert!(inner.centroids.rows() > 2, "re-partition must use the retuned nlist");
        assert_eq!(
            state.table(),
            EvalEngine::parallel().topk(view, test_x.view(), Metric::SquaredEuclidean, 2)
        );
    }

    #[test]
    fn quantized_backend_is_bit_identical_through_appends_and_repartitions() {
        // The int8 shadow rides the clustered append path: batches between
        // re-partitions are encoded against the *frozen* affine of the last
        // partition (clamped codes, wider radii — never a wrong prune), and
        // the affine re-fits only when the growth policy re-runs Lloyd's.
        // Every append must stay bit-identical to the exhaustive state.
        let (train_x, train_y, test_x, test_y) = toy_task(180);
        let mut exhaustive =
            IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 4);
        let mut quantized = IncrementalTopK::new(test_x, test_y, Metric::SquaredEuclidean, 4)
            .with_backend(EvalBackend::quantized(3));
        for batch in LabeledView::new(&train_x, &train_y).batches(30) {
            let a = exhaustive.append(batch.features(), batch.labels());
            let b = quantized.append(batch.features(), batch.labels());
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(exhaustive.table(), quantized.table());
        }
        let stats = quantized.prune_stats();
        assert!(stats.rows_quantized > 0, "the int8 phase must have run");
        assert!(
            stats.rows_scanned < stats.rows_quantized,
            "re-rank must be a strict subset of the approximate scan"
        );
        // 6 batches of 30 at 2x growth: partitions at 30, 60, 120 — and the
        // 90/150-row batches were encoded against a frozen affine.
        assert_eq!(quantized.repartitions(), 3);
        let inner = quantized.clustered.as_ref().expect("clustered state engaged");
        assert!(inner.quantizer.is_some(), "re-partition must re-fit the affine");
    }

    #[test]
    fn growth_policy_factor_controls_repartition_cadence() {
        let (train_x, train_y, test_x, test_y) = toy_task(160);
        let reference = knn_reference(train_x.view(), test_x.view(), Metric::SquaredEuclidean, 3);
        let mut counts = Vec::new();
        for factor in [1.5, 2.0, 3.0] {
            let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 3)
                .with_backend(EvalBackend::quantized(4))
                .with_repartition_policy(RepartitionPolicy::Growth(factor));
            for batch in LabeledView::new(&train_x, &train_y).batches(20) {
                state.append(batch.features(), batch.labels());
            }
            assert_eq!(state.table(), reference, "growth {factor}");
            counts.push(state.repartitions());
        }
        // 8 batches of 20: growth 1.5 partitions at 20/40/60/100/160,
        // growth 2 at 20/40/80/160, growth 3 at 20/60/180(never, capped 160).
        assert!(counts[0] > counts[1], "tighter growth must re-cluster more: {counts:?}");
        assert!(counts[1] > counts[2], "looser growth must re-cluster less: {counts:?}");
    }

    #[test]
    fn prune_rate_policy_repartitions_only_when_pruning_decays() {
        let (train_x, train_y, test_x, test_y) = toy_task(160);
        let reference = knn_reference(train_x.view(), test_x.view(), Metric::SquaredEuclidean, 3);
        // min_row_prune = 0: the first partition is kept forever.
        let mut keep = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 3)
            .with_backend(EvalBackend::clustered(4))
            .with_repartition_policy(RepartitionPolicy::PruneRate { min_row_prune: 0.0 });
        // min_row_prune = 1.01: unattainable, so every append re-partitions.
        let mut churn = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 3)
            .with_backend(EvalBackend::clustered(4))
            .with_repartition_policy(RepartitionPolicy::PruneRate { min_row_prune: 1.01 });
        for batch in LabeledView::new(&train_x, &train_y).batches(40) {
            keep.append(batch.features(), batch.labels());
            churn.append(batch.features(), batch.labels());
        }
        assert_eq!(keep.table(), reference);
        assert_eq!(churn.table(), reference);
        assert_eq!(keep.repartitions(), 1, "a satisfied prune rate never re-clusters");
        assert_eq!(churn.repartitions(), 4, "an unattainable prune rate re-clusters every append");
    }

    #[test]
    fn cosine_with_clustered_backend_falls_back_to_exhaustive() {
        let (train_x, train_y, test_x, test_y) = toy_task(60);
        let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::Cosine, 2)
            .with_backend(EvalBackend::clustered(4));
        for batch in LabeledView::new(&train_x, &train_y).batches(20) {
            state.append(batch.features(), batch.labels());
        }
        assert!(state.clustered.is_none(), "cosine must never engage the clustered partition");
        assert_eq!(state.table(), knn_reference(train_x.view(), test_x.view(), Metric::Cosine, 2));
    }

    #[test]
    fn knn_error_matches_table_snapshot_votes() {
        let (train_x, train_y, test_x, test_y) = toy_task(70);
        let mut state = IncrementalTopK::new(test_x, test_y.clone(), Metric::SquaredEuclidean, 5);
        state.append(train_x.view(), &train_y);
        for k in [1usize, 3, 5, 9] {
            let via_table = state.table().knn_error(k, &train_y, &test_y, 2);
            assert_eq!(state.knn_error(k, 2).to_bits(), via_table.to_bits(), "k {k}");
        }
    }

    /// Cold fold over `train[start..end)` at global offset `start` — the
    /// reference every window position must match bit for bit.
    fn cold_window_table(
        train: DatasetView<'_>,
        test_x: &Matrix,
        metric: Metric,
        k: usize,
        start: usize,
        end: usize,
    ) -> NeighborTable {
        let window = train.slice_rows(start, end);
        let mut kernel = MetricKernel::new(metric);
        kernel.bind_queries(test_x.view());
        kernel.bind_train(window);
        let mut states = vec![TopKState::new(k); test_x.rows()];
        EvalEngine::parallel().update_topk(test_x.view(), &kernel, window, start, &mut states, None);
        NeighborTable::from_states(&states)
    }

    #[test]
    fn empty_batch_append_is_a_noop() {
        let (train_x, train_y, test_x, test_y) = toy_task(80);
        // Growth(1.0) re-partitions on every non-empty append — the sharpest
        // fixture for the old spurious empty-batch re-partition.
        let mut state = IncrementalTopK::new(test_x, test_y, Metric::SquaredEuclidean, 3)
            .with_backend(EvalBackend::clustered(3))
            .with_repartition_policy(RepartitionPolicy::Growth(1.0));
        state.append(train_x.view(), &train_y);
        let curve_len = state.curve().len();
        let reps = state.repartitions();
        let pairs = state.folded_pairs();
        let stats = state.prune_stats();
        let err = state.error();
        let empty = Matrix::zeros(0, 2);
        let err2 = state.append(empty.view(), &[]);
        assert_eq!(err2.to_bits(), err.to_bits(), "an empty append returns the current error");
        assert_eq!(state.curve().len(), curve_len, "no duplicate curve point");
        assert_eq!(state.repartitions(), reps, "no spurious re-partition");
        assert_eq!(state.folded_pairs(), pairs);
        assert_eq!(state.prune_stats(), stats, "no degenerate prune-rate sample");
        assert_eq!(state.consumed(), 80);
    }

    #[test]
    fn knn_error_clamps_vote_prefix_to_capacity_and_consumed() {
        let (train_x, train_y, test_x, test_y) = toy_task(40);
        let view = train_x.view();
        // k > consumed early in the stream: the vote covers only stored rows.
        let mut early = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 5);
        early.append(view.slice_rows(0, 2), &train_y[..2]);
        let via_table = early.table().knn_error(5, &train_y[..2], &test_y, 2);
        assert_eq!(early.knn_error(5, 2).to_bits(), via_table.to_bits());
        // An eviction slack tail must never vote: `k_arg > k` reads exactly
        // the certified k-prefix, matching the table snapshot.
        let mut state =
            IncrementalTopK::new(test_x, test_y.clone(), Metric::SquaredEuclidean, 3).with_eviction(4);
        state.append(view, &train_y);
        state.evict_oldest(5);
        let expect = state.table().knn_error(7, &train_y, &test_y, 2);
        assert_eq!(state.knn_error(7, 2).to_bits(), expect.to_bits(), "slack tail voted");
        assert_eq!(state.knn_error(7, 2).to_bits(), state.knn_error(3, 2).to_bits());
    }

    #[test]
    fn eviction_matches_cold_fold_at_every_window_position() {
        let (train_x, train_y, test_x, test_y) = toy_task(180);
        let view = train_x.view();
        for backend in [EvalBackend::Exhaustive, EvalBackend::clustered(3), EvalBackend::quantized(3)] {
            // slack 0 drains buffers on almost every eviction (the re-scan
            // path); larger slacks absorb evictions in the buffer.
            for slack in [0usize, 2, 6] {
                let mut state =
                    IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 3)
                        .with_backend(backend)
                        .with_eviction(slack);
                let mut consumed = 0;
                while consumed < 180 {
                    let end = (consumed + 30).min(180);
                    state.append(view.slice_rows(consumed, end), &train_y[consumed..end]);
                    consumed = end;
                    if state.window_len() > 60 {
                        let report = state.evict_oldest(30);
                        assert_eq!(report.rows_evicted, 30);
                    }
                    let start = state.window_start();
                    let cold = cold_window_table(view, &test_x, Metric::SquaredEuclidean, 3, start, consumed);
                    assert_eq!(
                        state.table(),
                        cold,
                        "backend {} slack {slack} window [{start}, {consumed})",
                        backend.name()
                    );
                    let cold_err = cold.one_nn_error(&train_y[..consumed], &test_y);
                    assert_eq!(state.error().to_bits(), cold_err.to_bits());
                    let cold_k3 = cold.knn_error(3, &train_y[..consumed], &test_y, 2);
                    assert_eq!(state.knn_error(3, 2).to_bits(), cold_k3.to_bits());
                }
                assert!(state.window_start() > 0, "the window must actually have slid");
            }
        }
    }

    #[test]
    fn eviction_shrinks_the_window_index_residency() {
        let (train_x, train_y, test_x, test_y) = toy_task(180);
        let mut state = IncrementalTopK::new(test_x, test_y, Metric::SquaredEuclidean, 3)
            .with_backend(EvalBackend::quantized(3))
            .with_eviction(2);
        state.append(train_x.view(), &train_y);
        let before = state.window_index_bytes().expect("first append partitions the window");
        assert!(before.train_rows > 0 && before.quantized_codes > 0);
        state.evict_oldest(90);
        let after = state.window_index_bytes().expect("index survives a partial eviction");
        assert!(after.train_rows < before.train_rows, "cluster buffers must shrink");
        assert!(after.quantized_codes < before.quantized_codes, "shadow codes must shrink");
        assert!(after.quantized_meta < before.quantized_meta, "shadow metadata must shrink");
        // Drain the rest: the emptied index is dropped entirely.
        state.evict_oldest(90);
        assert!(state.window_index_bytes().is_none());
        assert_eq!(state.window_len(), 0);
        assert_eq!(state.error(), 1.0, "an empty window predicts nothing");
        assert_eq!(state.table().k(), 0);
        // The stream continues past a fully drained window.
        let report = state.evict_oldest(10);
        assert_eq!(report, EvictReport::default());
    }

    #[test]
    #[should_panic(expected = "with_eviction")]
    fn evicting_without_enabling_eviction_panics() {
        let (train_x, train_y, test_x, test_y) = toy_task(20);
        let mut state = IncrementalTopK::new(test_x, test_y, Metric::SquaredEuclidean, 1);
        state.append(train_x.view(), &train_y);
        state.evict_oldest(5);
    }

    #[test]
    #[should_panic(expected = "batch dimensionality")]
    fn dimension_mismatch_panics() {
        let (_, _, test_x, test_y) = toy_task(10);
        let mut state = IncrementalTopK::new(test_x, test_y, Metric::SquaredEuclidean, 1);
        state.append(&Matrix::zeros(5, 7), &[0, 1, 0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "label count changed")]
    fn set_labels_rejects_resized_splits() {
        let (train_x, train_y, test_x, test_y) = toy_task(20);
        let mut state = IncrementalTopK::new(test_x, test_y, Metric::SquaredEuclidean, 1);
        state.append(train_x.view(), &train_y);
        let _ = state.set_labels(&train_y[..10], &[0; 60]);
    }
}
