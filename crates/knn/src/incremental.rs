//! Incremental 1NN re-evaluation after label cleaning (Section V of the
//! paper, "Efficient Incremental Execution").
//!
//! After the initial (expensive) nearest-neighbour computation, Snoopy keeps
//! the index of each test point's nearest training sample. Cleaning labels of
//! training or test samples does not move any nearest neighbour — features
//! are untouched — so the 1NN error after any sequence of label edits can be
//! recomputed by a single `O(test)` pass, which is what gives the paper its
//! "0.2 ms for 10 K test / 50 K training samples" real-time feedback.
//!
//! The cache is built either directly from labelled views (one engine pass,
//! no feature copies) or — preferably — snapshotted from a fully-consumed
//! [`StreamedOneNn`], in which case no feature matrix is ever touched again.

use crate::brute::BruteForceIndex;
use crate::metric::Metric;
use crate::stream::StreamedOneNn;
use snoopy_linalg::{DatasetView, LabeledView};

/// Incremental 1NN error evaluator.
#[derive(Debug, Clone)]
pub struct IncrementalOneNn {
    /// Nearest training index per test point.
    nearest_train: Vec<usize>,
    /// Current (possibly cleaned) training labels.
    train_labels: Vec<u32>,
    /// Current (possibly cleaned) test labels.
    test_labels: Vec<u32>,
}

impl IncrementalOneNn {
    /// Builds the cache by running the full nearest-neighbour computation
    /// over borrowed views (zero feature copies).
    pub fn build<'a>(
        train_features: impl Into<DatasetView<'a>>,
        train_labels: &[u32],
        test_features: impl Into<DatasetView<'a>>,
        test_labels: &[u32],
        num_classes: usize,
        metric: Metric,
    ) -> Self {
        let train_features = train_features.into();
        let view = LabeledView::from_parts(train_features, train_labels, num_classes);
        let index = BruteForceIndex::from_view(view, metric);
        let nearest = index.nearest_neighbors_batch(test_features.into());
        Self {
            nearest_train: nearest.iter().map(|n| n.index).collect(),
            train_labels: train_labels.to_vec(),
            test_labels: test_labels.to_vec(),
        }
    }

    /// Builds the cache from two labelled views.
    pub fn from_views(train: LabeledView<'_>, test: LabeledView<'_>, metric: Metric) -> Self {
        Self::build(
            train.features(),
            train.labels(),
            test.features(),
            test.labels(),
            train.num_classes(),
            metric,
        )
    }

    /// Builds the cache from a fully-consumed streamed evaluator, avoiding a
    /// second pass over the data.
    pub fn from_stream(stream: &StreamedOneNn, train_labels: &[u32], test_labels: &[u32]) -> Self {
        assert!(
            stream.consumed() == train_labels.len(),
            "stream must have consumed the full training set before snapshotting (consumed {} of {})",
            stream.consumed(),
            train_labels.len()
        );
        let nearest_train = stream.nearest_train_indices();
        assert!(
            nearest_train.iter().all(|&i| i < train_labels.len()),
            "stream must have consumed the full training set before snapshotting (unassigned test points remain)"
        );
        assert_eq!(test_labels.len(), nearest_train.len(), "test label count mismatch");
        Self { nearest_train, train_labels: train_labels.to_vec(), test_labels: test_labels.to_vec() }
    }

    /// Number of test points.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }

    /// Number of training points.
    pub fn train_len(&self) -> usize {
        self.train_labels.len()
    }

    /// Updates the label of a training sample (e.g. after cleaning).
    pub fn relabel_train(&mut self, index: usize, new_label: u32) {
        self.train_labels[index] = new_label;
    }

    /// Updates the label of a test sample.
    pub fn relabel_test(&mut self, index: usize, new_label: u32) {
        self.test_labels[index] = new_label;
    }

    /// Applies a batch of training-label updates.
    pub fn relabel_train_batch(&mut self, updates: &[(usize, u32)]) {
        for &(i, y) in updates {
            self.relabel_train(i, y);
        }
    }

    /// Applies a batch of test-label updates.
    pub fn relabel_test_batch(&mut self, updates: &[(usize, u32)]) {
        for &(i, y) in updates {
            self.relabel_test(i, y);
        }
    }

    /// Current 1NN error under the current labels — one pass over the test set.
    pub fn error(&self) -> f64 {
        if self.test_labels.is_empty() {
            return 0.0;
        }
        let wrong = self
            .nearest_train
            .iter()
            .zip(&self.test_labels)
            .filter(|(&nn, &y)| self.train_labels[nn] != y)
            .count();
        wrong as f64 / self.test_labels.len() as f64
    }

    /// Synchronises all labels at once (e.g. after a cleaning round applied to
    /// the underlying dataset) and returns the new error.
    pub fn set_labels(&mut self, train_labels: &[u32], test_labels: &[u32]) -> f64 {
        assert_eq!(train_labels.len(), self.train_labels.len(), "train label count changed");
        assert_eq!(test_labels.len(), self.test_labels.len(), "test label count changed");
        self.train_labels.copy_from_slice(train_labels);
        self.test_labels.copy_from_slice(test_labels);
        self.error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_linalg::Matrix;

    fn noisy_task() -> (Matrix, Vec<u32>, Vec<u32>, Matrix, Vec<u32>, Vec<u32>) {
        // Two clusters; 20% of training labels and 10% of test labels flipped.
        let n = 100;
        let mut train_rows = Vec::new();
        let mut clean_train = Vec::new();
        for i in 0..n {
            let c = (i % 2) as u32;
            let base = if c == 0 { 0.0 } else { 5.0 };
            train_rows.push(vec![base + (i as f32 * 0.17).sin() * 0.3, (i as f32 * 0.31).cos() * 0.3]);
            clean_train.push(c);
        }
        let mut noisy_train = clean_train.clone();
        for i in (0..n).step_by(5) {
            noisy_train[i] = 1 - noisy_train[i];
        }
        let m = 40;
        let mut test_rows = Vec::new();
        let mut clean_test = Vec::new();
        for i in 0..m {
            let c = (i % 2) as u32;
            let base = if c == 0 { 0.0 } else { 5.0 };
            test_rows.push(vec![base + (i as f32 * 0.41).sin() * 0.3, (i as f32 * 0.13).cos() * 0.3]);
            clean_test.push(c);
        }
        let mut noisy_test = clean_test.clone();
        for i in (0..m).step_by(10) {
            noisy_test[i] = 1 - noisy_test[i];
        }
        (
            Matrix::from_rows(&train_rows),
            noisy_train,
            clean_train,
            Matrix::from_rows(&test_rows),
            noisy_test,
            clean_test,
        )
    }

    #[test]
    fn initial_error_matches_full_recompute() {
        let (tx, ty, _, qx, qy, _) = noisy_task();
        let inc = IncrementalOneNn::build(&tx, &ty, &qx, &qy, 2, Metric::SquaredEuclidean);
        let full = BruteForceIndex::new(&tx, &ty, 2, Metric::SquaredEuclidean).one_nn_error(&qx, &qy);
        assert!((inc.error() - full).abs() < 1e-12);
    }

    #[test]
    fn from_views_matches_build() {
        let (tx, ty, _, qx, qy, _) = noisy_task();
        let train = LabeledView::new(&tx, &ty).with_classes(2);
        let test = LabeledView::new(&qx, &qy).with_classes(2);
        let a = IncrementalOneNn::from_views(train, test, Metric::SquaredEuclidean);
        let b = IncrementalOneNn::build(&tx, &ty, &qx, &qy, 2, Metric::SquaredEuclidean);
        assert!((a.error() - b.error()).abs() < 1e-12);
    }

    #[test]
    fn incremental_equals_full_recompute_after_each_cleaning_step() {
        let (tx, ty, clean_ty, qx, qy, clean_qy) = noisy_task();
        let mut inc = IncrementalOneNn::build(&tx, &ty, &qx, &qy, 2, Metric::SquaredEuclidean);
        let mut cur_ty = ty.clone();
        let mut cur_qy = qy.clone();
        // Clean one dirty train label and one dirty test label at a time.
        for i in 0..cur_ty.len() {
            if cur_ty[i] != clean_ty[i] {
                cur_ty[i] = clean_ty[i];
                inc.relabel_train(i, clean_ty[i]);
                let full = BruteForceIndex::new(&tx, &cur_ty, 2, Metric::SquaredEuclidean)
                    .one_nn_error(&qx, &cur_qy);
                assert!((inc.error() - full).abs() < 1e-12, "train clean step {i}");
            }
        }
        for i in 0..cur_qy.len() {
            if cur_qy[i] != clean_qy[i] {
                cur_qy[i] = clean_qy[i];
                inc.relabel_test(i, clean_qy[i]);
                let full = BruteForceIndex::new(&tx, &cur_ty, 2, Metric::SquaredEuclidean)
                    .one_nn_error(&qx, &cur_qy);
                assert!((inc.error() - full).abs() < 1e-12, "test clean step {i}");
            }
        }
        // Fully cleaned, well separated clusters: error is zero.
        assert_eq!(inc.error(), 0.0);
    }

    #[test]
    fn cleaning_labels_reduces_error_on_average() {
        let (tx, ty, clean_ty, qx, qy, clean_qy) = noisy_task();
        let mut inc = IncrementalOneNn::build(&tx, &ty, &qx, &qy, 2, Metric::SquaredEuclidean);
        let before = inc.error();
        inc.set_labels(&clean_ty, &clean_qy);
        assert!(inc.error() < before);
    }

    #[test]
    fn from_stream_matches_build() {
        let (tx, ty, _, qx, qy, _) = noisy_task();
        let mut stream = StreamedOneNn::new(qx.clone(), qy.clone(), Metric::SquaredEuclidean);
        let view = tx.view();
        stream.add_train_batch(view.slice_rows(0, 60), &ty[..60]);
        stream.add_train_batch(view.slice_rows(60, tx.rows()), &ty[60..]);
        let from_stream = IncrementalOneNn::from_stream(&stream, &ty, &qy);
        let built = IncrementalOneNn::build(&tx, &ty, &qx, &qy, 2, Metric::SquaredEuclidean);
        assert!((from_stream.error() - built.error()).abs() < 1e-12);
    }

    #[test]
    fn batch_relabels_apply_all_updates() {
        let (tx, ty, clean_ty, qx, qy, _) = noisy_task();
        let mut inc = IncrementalOneNn::build(&tx, &ty, &qx, &qy, 2, Metric::SquaredEuclidean);
        let updates: Vec<(usize, u32)> = ty
            .iter()
            .enumerate()
            .filter(|(i, &y)| y != clean_ty[*i])
            .map(|(i, _)| (i, clean_ty[i]))
            .collect();
        inc.relabel_train_batch(&updates);
        let full = BruteForceIndex::new(&tx, &clean_ty, 2, Metric::SquaredEuclidean).one_nn_error(&qx, &qy);
        assert!((inc.error() - full).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "full training set")]
    fn snapshotting_an_unfinished_stream_panics() {
        let (tx, ty, _, qx, qy, _) = noisy_task();
        let mut stream = StreamedOneNn::new(qx, qy.clone(), Metric::SquaredEuclidean);
        stream.add_train_batch(tx.view().slice_rows(0, 10), &ty[..10]);
        // Claiming a larger training set than consumed leaves dangling indices.
        let _ = IncrementalOneNn::from_stream(&stream, &ty[..5], &qy);
    }
}
