//! Exact-pruned clustered nearest-neighbour index: a k-means coarse partition
//! plus triangle-inequality pruning, behind the same [`NeighborTable`]
//! handshake as the exhaustive engine.
//!
//! The exhaustive [`EvalEngine`] visits every training row per query —
//! `O(n · m · d)` for `n` training rows and `m` queries. On clustered
//! embedding spaces most of that work provably cannot change the answer:
//! once a query holds `k` candidates, whole clusters whose *lower bound* on
//! any member's distance exceeds the current k-th admitted distance can be
//! skipped without looking at a single row. [`ClusteredIndex`] implements
//! that sublinear-work path while keeping results **bit-identical** to the
//! exhaustive engine.
//!
//! ## Exactness argument
//!
//! Let `e(a, b)` be the true Euclidean distance. For a query `q`, a cluster
//! centroid `c` with radius `r_c = max_{x ∈ c} e(x, c)`, and a member row
//! `x`, the triangle inequality gives two lower bounds:
//!
//! * **cluster bound** — `e(q, x) ≥ max(0, e(q, c) − r_c)`,
//! * **per-row bound** — `e(q, x) ≥ |e(q, c) − e(x, c)|`.
//!
//! [`Metric::SquaredEuclidean`] and [`Metric::Euclidean`] are monotone
//! remappings of `e` (squaring, identity), so a bound `b` on `e` remaps to a
//! bound `b²` (resp. `b`) on the stored distance, and a candidate can only be
//! admitted if its remapped distance is lexicographically `< (τ, i)` where
//! `τ` is the current k-th admitted distance. A cluster or row is skipped
//! **only** when its remapped bound strictly exceeds `τ`; on equality it is
//! still scanned, because an equal-distance row with a lower global index
//! must still be admitted (the crate-wide `(distance, index)` tie-break).
//!
//! Floating point: the engine computes distances in `f32`
//! ([`Matrix::row_sq_dist`], with a relative error ≤ ~`(d+1)·ε`), while the
//! index computes all centroid geometry (`e(q, c)`, `e(x, c)`, `r_c`) in
//! `f64`, where it is accurate to ~`2⁻⁵⁰`. To guarantee a bound never
//! exceeds the `f32` distance the kernel would have computed, every remapped
//! bound is deflated by a dimension-derived slack factor
//! `1 − (2d + 32)·ε_f32` before the comparison — covering the worst-case
//! `f32` summation error on both sides (squared distances double the
//! relative error, hence the `2d`). A relative slack cannot cover *subnormal
//! underflow* (a squared distance below the normal `f32` range can round to
//! exactly `0.0` while the `f64` bound stays positive), so every prune
//! comparison additionally requires the bound to clear the threshold by a
//! metric-scaled absolute guard (the smallest normal `f32`, or its square
//! root for Euclidean distances) — in particular a threshold of `0` (a
//! perfect hit already admitted) disables pruning outright. The slack and
//! guard sacrifice a vanishing amount of pruning power (< 0.02% for
//! `d ≤ 768` at any realistic data scale) and never correctness; the
//! proptests in `proptest_clustered.rs` pin the bit-for-bit parity across
//! metrics, `k`, duplicate rows, and degenerate shapes, and the
//! subnormal-underflow regression test pins the guard.
//!
//! [`Metric::Cosine`] is *not* a metric (no triangle inequality on the
//! dissimilarity), so cosine consumers always take the exhaustive path — the
//! [`EvalBackend`] dispatchers fall back automatically.
//!
//! ## Anatomy
//!
//! Construction runs [`lloyd_kmeans`] (seeded via `snoopy_linalg::rng`, so
//! indexes are deterministic), drops empty clusters, and regroups rows into
//! cluster-contiguous buffers via [`partition_rows`] — each regrouped row
//! remembers its original index, which is what gets admitted into
//! [`TopKState`]s so tie-breaks and downstream label lookups are oblivious
//! to the regrouping. A query computes all centroid distances, sorts
//! clusters by lower bound, and scans them in order with the same distance
//! expressions as the engine kernel until the next cluster's bound can no
//! longer beat the current k-th distance. Queries are chunked across the
//! configured engine's worker threads exactly like the exhaustive kernel;
//! per-cluster visit order is per-query, so the scan is a straight
//! row-contiguous loop rather than the engine's cross-query block walk.
//!
//! Every query path reports [`PruneStats`] — clusters visited vs total and
//! rows scanned vs pruned — which `bench_knn_json` emits into
//! `BENCH_knn.json` as the pruning-rate regression anchor.

use crate::engine::{EvalEngine, NearestHit, NeighborTable, TopKState};
use crate::metric::Metric;
use snoopy_linalg::kmeans::{lloyd_kmeans, partition_rows};
use snoopy_linalg::{DatasetView, Matrix};

/// Which evaluation path a distance consumer routes through.
///
/// Both backends speak the same [`NeighborTable`] handshake and return
/// bit-identical tables; `Clustered` merely skips work that provably cannot
/// change the answer. Auto-selection ([`EvalBackend::auto_for`]) picks
/// `Clustered` once the training side is large enough to amortise the
/// k-means build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalBackend {
    /// The exhaustive blocked engine: every query visits every training row.
    Exhaustive,
    /// k-means coarse partition with `nlist` clusters plus exact
    /// triangle-inequality pruning (`nlist` is clamped to the training-row
    /// count at build time). Falls back to [`EvalBackend::Exhaustive`] for
    /// cosine dissimilarity and empty training sets.
    Clustered {
        /// Number of k-means clusters to partition the training rows into.
        nlist: usize,
    },
}

/// Minimum training rows before [`EvalBackend::auto_for`] picks clustering:
/// below this the k-means build costs more than the scans it saves.
pub const AUTO_MIN_TRAIN: usize = 4096;

/// Minimum queries before [`EvalBackend::auto_for`] picks clustering: the
/// build cost is amortised across queries.
pub const AUTO_MIN_QUERIES: usize = 32;

impl EvalBackend {
    /// Train-size auto-selection heuristic: clustering pays once the k-means
    /// build (`O(n · nlist · d)` per iteration) is amortised over enough
    /// queries, and is only sound for triangle-prunable metrics. Returns
    /// [`EvalBackend::Clustered`] with [`EvalBackend::default_nlist`] when
    /// `train_rows ≥` [`AUTO_MIN_TRAIN`], `num_queries ≥`
    /// [`AUTO_MIN_QUERIES`], and the metric is prunable; otherwise
    /// [`EvalBackend::Exhaustive`].
    pub fn auto_for(train_rows: usize, num_queries: usize, metric: Metric) -> EvalBackend {
        if Self::prunable(metric) && train_rows >= AUTO_MIN_TRAIN && num_queries >= AUTO_MIN_QUERIES {
            EvalBackend::Clustered { nlist: Self::default_nlist(train_rows) }
        } else {
            EvalBackend::Exhaustive
        }
    }

    /// The default cluster count for a training set: `⌈√n⌉`, the classic
    /// balance point where centroid scans and intra-cluster scans cost the
    /// same.
    pub fn default_nlist(train_rows: usize) -> usize {
        (train_rows as f64).sqrt().ceil().max(1.0) as usize
    }

    /// Whether `metric` admits triangle-inequality pruning (everything except
    /// cosine dissimilarity, which is not a metric).
    pub fn prunable(metric: Metric) -> bool {
        metric != Metric::Cosine
    }

    /// Resolves this backend against a concrete training set: `Some(nlist)`
    /// (clamped to the row count) when the clustered path applies, `None`
    /// when the exhaustive engine must be used.
    pub fn resolve(&self, train_rows: usize, metric: Metric) -> Option<usize> {
        match *self {
            EvalBackend::Exhaustive => None,
            EvalBackend::Clustered { nlist } => {
                (Self::prunable(metric) && train_rows > 0).then(|| nlist.clamp(1, train_rows))
            }
        }
    }

    /// Short name for reports and benchmark JSON.
    pub fn name(&self) -> &'static str {
        match self {
            EvalBackend::Exhaustive => "exhaustive",
            EvalBackend::Clustered { .. } => "clustered",
        }
    }
}

/// Pruning counters accumulated by clustered query paths.
///
/// `clusters_total` / `rows_total` count the work the exhaustive engine
/// would have done (per query); `clusters_visited` counts clusters whose
/// rows were looked at, `rows_scanned` counts actual distance evaluations
/// and `rows_pruned` counts rows skipped by the per-row bound inside visited
/// clusters. Rows in never-visited clusters appear in neither.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Queries answered.
    pub queries: usize,
    /// Clusters whose rows were scanned (summed over queries).
    pub clusters_visited: usize,
    /// Clusters times queries — the exhaustive cluster-visit count.
    pub clusters_total: usize,
    /// Query–row distance evaluations actually performed.
    pub rows_scanned: usize,
    /// Rows skipped by the per-row bound inside visited clusters.
    pub rows_pruned: usize,
    /// Training rows times queries — the exhaustive distance count.
    pub rows_total: usize,
}

impl PruneStats {
    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &PruneStats) {
        self.queries += other.queries;
        self.clusters_visited += other.clusters_visited;
        self.clusters_total += other.clusters_total;
        self.rows_scanned += other.rows_scanned;
        self.rows_pruned += other.rows_pruned;
        self.rows_total += other.rows_total;
    }

    /// Fraction of cluster visits skipped: `1 − visited / total` (0 when no
    /// query ran).
    pub fn cluster_prune_rate(&self) -> f64 {
        if self.clusters_total == 0 {
            0.0
        } else {
            1.0 - self.clusters_visited as f64 / self.clusters_total as f64
        }
    }

    /// Fraction of pairwise distances never evaluated: `1 − scanned / total`
    /// (0 when no query ran).
    pub fn row_prune_rate(&self) -> f64 {
        if self.rows_total == 0 {
            0.0
        } else {
            1.0 - self.rows_scanned as f64 / self.rows_total as f64
        }
    }
}

/// Deterministic seed for the index's internal k-means run. Clustering
/// quality only affects speed, never results, so a fixed seed keeps index
/// builds reproducible without threading a seed through every call site.
pub const KMEANS_SEED: u64 = 0x5e3d_c0de;

/// Iteration cap for the internal k-means run: Lloyd's converges fast on the
/// coarse partitions used here, and a stale assignment only costs pruning
/// power, never correctness.
const KMEANS_MAX_ITERS: usize = 16;

/// `‖a − b‖₂` accumulated in `f64` — the bound-side geometry is computed at
/// double precision so only the `f32` kernel side needs slack.
fn euclid_f64(a: &[f32], b: &[f32]) -> f64 {
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let d = x as f64 - y as f64;
        acc += d * d;
    }
    acc.sqrt()
}

/// The exact-pruned clustered index. See the [module docs](self) for the
/// bound derivation and exactness argument.
#[derive(Debug, Clone)]
pub struct ClusteredIndex {
    metric: Metric,
    /// Regrouped cluster-contiguous rows (a copy of the training rows —
    /// bit-identical values, new order).
    data: Matrix,
    /// Regrouped row → original training-row index (what gets admitted).
    original: Vec<usize>,
    /// Cluster `c` occupies regrouped rows `offsets[c]..offsets[c + 1]`.
    offsets: Vec<usize>,
    /// `nlist × d` centroids (empty clusters dropped).
    centroids: Matrix,
    /// Per-cluster radius `r_c = max_{x ∈ c} e(x, c)` in `f64`.
    radii: Vec<f64>,
    /// Per regrouped row: `e(x, c)` to its own centroid in `f64`.
    row_center: Vec<f64>,
    /// Bound deflation factor `1 − (2d + 32)·ε_f32` (see module docs).
    slack: f64,
    /// Absolute prune guard covering f32 subnormal underflow: relative slack
    /// cannot bound the error once a squared distance falls below the normal
    /// f32 range (it can round to exactly 0.0 while the f64 bound stays
    /// positive), so a bound must clear the threshold by this margin before
    /// it may prune — the smallest normal f32 for squared distances, its
    /// square root for Euclidean ones. In particular `τ = 0` (a perfect hit)
    /// disables pruning entirely, preserving the zero-distance tie-break.
    abs_guard: f64,
    engine: EvalEngine,
}

impl ClusteredIndex {
    /// Builds an index over `train` with (at most) `nlist` k-means clusters,
    /// using a parallel default engine for the build and later queries.
    ///
    /// # Panics
    /// Panics for [`Metric::Cosine`] (not triangle-prunable — use
    /// [`EvalBackend::resolve`] to fall back) or an empty `train`.
    pub fn build(train: DatasetView<'_>, metric: Metric, nlist: usize) -> Self {
        Self::build_with_engine(train, metric, nlist, EvalEngine::parallel())
    }

    /// [`ClusteredIndex::build`] with an explicit engine: the engine's thread
    /// count drives both the k-means assignment passes and later query
    /// chunking.
    pub fn build_with_engine(
        train: DatasetView<'_>,
        metric: Metric,
        nlist: usize,
        engine: EvalEngine,
    ) -> Self {
        assert!(EvalBackend::prunable(metric), "cosine dissimilarity is not triangle-prunable");
        assert!(!train.is_empty(), "cannot build a clustered index over an empty dataset");
        let km = lloyd_kmeans(train, nlist, KMEANS_MAX_ITERS, KMEANS_SEED, engine.threads());
        let k = km.centroids.rows();

        // Compact away empty clusters so queries never bound-check them.
        let mut counts = vec![0usize; k];
        for &a in &km.assignments {
            counts[a] += 1;
        }
        let keep: Vec<usize> = (0..k).filter(|&c| counts[c] > 0).collect();
        let mut remap = vec![usize::MAX; k];
        for (new, &old) in keep.iter().enumerate() {
            remap[old] = new;
        }
        let assignments: Vec<usize> = km.assignments.iter().map(|&a| remap[a]).collect();
        let centroids = km.centroids.view().select_rows(&keep);

        let part = partition_rows(train, &assignments, keep.len());
        let mut row_center = Vec::with_capacity(train.rows());
        let mut radii = vec![0.0f64; keep.len()];
        for (c, radius) in radii.iter_mut().enumerate() {
            let cent = centroids.row(c);
            for r in part.offsets[c]..part.offsets[c + 1] {
                let d = euclid_f64(part.data.row(r), cent);
                row_center.push(d);
                *radius = radius.max(d);
            }
        }
        let slack = 1.0 - (2.0 * train.cols() as f64 + 32.0) * f32::EPSILON as f64;
        let abs_guard = match metric {
            Metric::SquaredEuclidean => f32::MIN_POSITIVE as f64,
            _ => (f32::MIN_POSITIVE as f64).sqrt(),
        };
        Self {
            metric,
            data: part.data,
            original: part.original,
            offsets: part.offsets,
            centroids,
            radii,
            row_center,
            slack,
            abs_guard,
            engine,
        }
    }

    /// Replaces the engine driving query-chunk parallelism.
    pub fn with_engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Swaps the engine in place.
    pub fn set_engine(&mut self, engine: EvalEngine) {
        self.engine = engine;
    }

    /// Number of indexed training rows.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// Whether the index is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.data.rows() == 0
    }

    /// Number of (non-empty) clusters.
    pub fn num_clusters(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The metric the index was built for.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Remaps a Euclidean-space lower bound into the stored-distance space
    /// and deflates it by the slack factor (see module docs).
    #[inline]
    fn mapped_bound(&self, lb: f64) -> f64 {
        let b = match self.metric {
            Metric::SquaredEuclidean => lb * lb,
            _ => lb,
        };
        b * self.slack
    }

    /// Whether a Euclidean-space lower bound `lb` proves that no candidate
    /// can be admitted against the current threshold `tau` (the k-th stored
    /// distance, `∞` while the state is not full): the remapped, deflated
    /// bound must clear `tau` by the absolute subnormal guard.
    #[inline]
    fn prunes(&self, lb: f64, tau: f64) -> bool {
        self.mapped_bound(lb) > tau + self.abs_guard
    }

    /// Shared per-query preamble: fills `order` with
    /// `(lower bound, centroid distance, cluster)` triples sorted ascending
    /// by bound (ties to the lowest cluster id) and books the exhaustive
    /// work this query would have cost into `stats`.
    fn order_clusters(&self, q: &[f32], order: &mut Vec<(f64, f64, usize)>, stats: &mut PruneStats) {
        order.clear();
        for (c, cent) in self.centroids.rows_iter().enumerate() {
            let dqc = euclid_f64(q, cent);
            order.push(((dqc - self.radii[c]).max(0.0), dqc, c));
        }
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        stats.queries += 1;
        stats.clusters_total += self.num_clusters();
        stats.rows_total += self.data.rows();
    }

    /// Shared chunk-parallel driver: splits `slots` (one per query) into one
    /// contiguous chunk per engine worker thread, runs `chunk_fn(start,
    /// chunk)` on each, and merges the per-chunk [`PruneStats`].
    fn fan_out<S, F>(&self, slots: &mut [S], chunk_fn: F) -> PruneStats
    where
        S: Send,
        F: Fn(usize, &mut [S]) -> PruneStats + Sync,
    {
        let n = slots.len();
        if n == 0 {
            return PruneStats::default();
        }
        let threads = self.engine.threads().min(n);
        if threads <= 1 {
            return chunk_fn(0, slots);
        }
        let chunk = n.div_ceil(threads);
        let mut stats = vec![PruneStats::default(); n.div_ceil(chunk)];
        std::thread::scope(|scope| {
            for ((t, slot), stat) in slots.chunks_mut(chunk).enumerate().zip(stats.iter_mut()) {
                let start = t * chunk;
                let chunk_fn = &chunk_fn;
                scope.spawn(move || {
                    *stat = chunk_fn(start, slot);
                });
            }
        });
        let mut total = PruneStats::default();
        for s in &stats {
            total.merge(s);
        }
        total
    }

    /// Answers one query into `state`: orders clusters by lower bound, scans
    /// until the bound can no longer beat the k-th admitted distance, and
    /// applies the per-row bound inside visited clusters. `skip` is a global
    /// training index to exclude (leave-one-out), `usize::MAX` for none.
    fn query_into(
        &self,
        q: &[f32],
        offset: usize,
        skip: usize,
        state: &mut TopKState,
        order: &mut Vec<(f64, f64, usize)>,
        stats: &mut PruneStats,
    ) {
        self.order_clusters(q, order, stats);
        for &(lb, dqc, c) in order.iter() {
            if state.hits().len() == state.k() {
                let tau = state.hits().last().expect("full state").distance as f64;
                // Clusters are ordered by ascending bound and τ only shrinks,
                // so the first unbeatable cluster ends the query.
                if self.prunes(lb, tau) {
                    break;
                }
            }
            stats.clusters_visited += 1;
            for r in self.offsets[c]..self.offsets[c + 1] {
                let global = offset + self.original[r];
                if global == skip {
                    continue;
                }
                if state.hits().len() == state.k() {
                    let tau = state.hits().last().expect("full state").distance as f64;
                    if self.prunes((dqc - self.row_center[r]).abs(), tau) {
                        stats.rows_pruned += 1;
                        continue;
                    }
                }
                // The exact expressions of the exhaustive kernel, on
                // bit-identical row values — parity is structural.
                let d2 = Matrix::row_sq_dist(q, self.data.row(r));
                let dist = if self.metric == Metric::Euclidean { d2.sqrt() } else { d2 };
                state.offer(dist, global);
                stats.rows_scanned += 1;
            }
        }
    }

    /// Answers queries `[start, start + states.len())` serially, reusing one
    /// cluster-order scratch buffer.
    fn query_chunk(
        &self,
        queries: DatasetView<'_>,
        start: usize,
        offset: usize,
        states: &mut [TopKState],
        exclude_self: Option<usize>,
    ) -> PruneStats {
        let mut stats = PruneStats::default();
        let mut order = Vec::with_capacity(self.num_clusters());
        for (qi, state) in states.iter_mut().enumerate() {
            let skip = exclude_self.map(|b| b + start + qi).unwrap_or(usize::MAX);
            self.query_into(queries.row(start + qi), offset, skip, state, &mut order, &mut stats);
        }
        stats
    }

    /// Folds the indexed training rows (global indices = original row index
    /// plus `offset`) into the running top-k state of every query row — the
    /// pruned counterpart of [`EvalEngine::update_topk`], with the same
    /// streamable fold semantics: pre-seeded states tighten the pruning
    /// threshold from the first cluster. `exclude_self = Some(base)`
    /// declares query row `i` to be global training row `base + i` and skips
    /// that one pair (leave-one-out).
    ///
    /// # Panics
    /// Panics on dimension mismatches or `states.len() != queries.rows()`.
    pub fn update_topk(
        &self,
        queries: DatasetView<'_>,
        offset: usize,
        states: &mut [TopKState],
        exclude_self: Option<usize>,
    ) -> PruneStats {
        assert_eq!(queries.cols(), self.data.cols(), "query/train dimensionality mismatch");
        assert_eq!(states.len(), queries.rows(), "one top-k state per query required");
        self.fan_out(states, |start, slot| self.query_chunk(queries, start, offset, slot, exclude_self))
    }

    /// Answers one query directly into a flat 1NN slot — the `k = 1`
    /// specialisation of [`ClusteredIndex::query_into`] with a scalar
    /// threshold: an empty slot carries `distance = ∞`, so bounds never
    /// prune until a candidate is admitted, and a slot pre-seeded by earlier
    /// batches prunes from the first cluster. Admission uses the crate-wide
    /// strict lexicographic rule ([`NearestHit::beats`]), identical to the
    /// exhaustive kernel and to a `k = 1` [`TopKState`].
    fn query_nearest_into(
        &self,
        q: &[f32],
        offset: usize,
        slot: &mut NearestHit,
        order: &mut Vec<(f64, f64, usize)>,
        stats: &mut PruneStats,
    ) {
        self.order_clusters(q, order, stats);
        for &(lb, dqc, c) in order.iter() {
            if self.prunes(lb, slot.distance as f64) {
                break;
            }
            stats.clusters_visited += 1;
            for r in self.offsets[c]..self.offsets[c + 1] {
                if self.prunes((dqc - self.row_center[r]).abs(), slot.distance as f64) {
                    stats.rows_pruned += 1;
                    continue;
                }
                let d2 = Matrix::row_sq_dist(q, self.data.row(r));
                let dist = if self.metric == Metric::Euclidean { d2.sqrt() } else { d2 };
                let global = offset + self.original[r];
                if NearestHit::beats(dist, global, *slot) {
                    *slot = NearestHit { distance: dist, index: global };
                }
                stats.rows_scanned += 1;
            }
        }
    }

    /// Answers queries `[start, start + best.len())` serially into flat 1NN
    /// slots, reusing one cluster-order scratch buffer (no per-query
    /// allocation — the streamed evaluator's steady-state invariant).
    fn query_chunk_nearest(
        &self,
        queries: DatasetView<'_>,
        start: usize,
        offset: usize,
        best: &mut [NearestHit],
    ) -> PruneStats {
        let mut stats = PruneStats::default();
        let mut order = Vec::with_capacity(self.num_clusters());
        for (qi, slot) in best.iter_mut().enumerate() {
            self.query_nearest_into(queries.row(start + qi), offset, slot, &mut order, &mut stats);
        }
        stats
    }

    /// Folds the indexed rows into flat 1NN slots (the streamed-evaluator
    /// layout): a running best from earlier batches prunes from the first
    /// cluster. Bit-identical to [`EvalEngine::update_nearest`] on the same
    /// batch, with no per-query allocation.
    ///
    /// # Panics
    /// Panics on dimension mismatches or `best.len() != queries.rows()`.
    pub fn update_nearest(
        &self,
        queries: DatasetView<'_>,
        offset: usize,
        best: &mut [NearestHit],
    ) -> PruneStats {
        assert_eq!(queries.cols(), self.data.cols(), "query/train dimensionality mismatch");
        assert_eq!(best.len(), queries.rows(), "one nearest slot per query required");
        self.fan_out(best, |start, slot| self.query_chunk_nearest(queries, start, offset, slot))
    }

    /// Top-k neighbour table for every query, from a cold start —
    /// bit-identical to [`EvalEngine::topk`] on the same data.
    pub fn topk(&self, queries: DatasetView<'_>, k: usize) -> NeighborTable {
        self.topk_with_stats(queries, k).0
    }

    /// [`ClusteredIndex::topk`] plus the pruning counters.
    pub fn topk_with_stats(&self, queries: DatasetView<'_>, k: usize) -> (NeighborTable, PruneStats) {
        let mut states = vec![TopKState::new(k.max(1)); queries.rows()];
        let stats = self.update_topk(queries, 0, &mut states, None);
        (NeighborTable::from_states(&states), stats)
    }

    /// Leave-one-out top-k table of the indexed data against itself (row `i`
    /// of `data` must be the view the index was built over) — bit-identical
    /// to [`EvalEngine::topk_loo`].
    pub fn topk_loo(&self, data: DatasetView<'_>, k: usize) -> NeighborTable {
        self.topk_loo_with_stats(data, k).0
    }

    /// [`ClusteredIndex::topk_loo`] plus the pruning counters.
    pub fn topk_loo_with_stats(&self, data: DatasetView<'_>, k: usize) -> (NeighborTable, PruneStats) {
        let mut states = vec![TopKState::new(k.max(1)); data.rows()];
        let stats = self.update_topk(data, 0, &mut states, Some(0));
        (NeighborTable::from_states(&states), stats)
    }
}

impl EvalEngine {
    /// [`EvalEngine::topk`] dispatched through an [`EvalBackend`]: the
    /// clustered path builds a [`ClusteredIndex`] (inheriting this engine's
    /// shape) and answers through it; unresolvable backends (cosine, empty
    /// train, `Exhaustive`) take the exhaustive kernel. Results are
    /// bit-identical either way.
    pub fn topk_with_backend(
        &self,
        train: DatasetView<'_>,
        queries: DatasetView<'_>,
        metric: Metric,
        k: usize,
        backend: EvalBackend,
    ) -> NeighborTable {
        match backend.resolve(train.rows(), metric) {
            Some(nlist) => ClusteredIndex::build_with_engine(train, metric, nlist, *self).topk(queries, k),
            None => self.topk(train, queries, metric, k),
        }
    }

    /// [`EvalEngine::topk_loo`] dispatched through an [`EvalBackend`].
    pub fn topk_loo_with_backend(
        &self,
        data: DatasetView<'_>,
        metric: Metric,
        k: usize,
        backend: EvalBackend,
    ) -> NeighborTable {
        match backend.resolve(data.rows(), metric) {
            Some(nlist) => ClusteredIndex::build_with_engine(data, metric, nlist, *self).topk_loo(data, k),
            None => self.topk_loo(data, metric, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{knn_reference, knn_reference_loo};

    fn blobs(n: usize, d: usize, centers: usize, seed: u64) -> Matrix {
        snoopy_testutil::blob_cloud(seed, n, d, centers, 6.0, 0.2)
    }

    #[test]
    fn clustered_topk_matches_reference_on_blobs() {
        let train = blobs(400, 8, 8, 1);
        let queries = blobs(60, 8, 8, 2);
        for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
            let index = ClusteredIndex::build(train.view(), metric, 8);
            for k in [1usize, 3, 10, 400] {
                let got = index.topk(queries.view(), k);
                assert_eq!(got, knn_reference(train.view(), queries.view(), metric, k), "k {k}");
            }
        }
    }

    #[test]
    fn pruning_actually_happens_on_separated_blobs() {
        let train = blobs(600, 6, 12, 3);
        let queries = blobs(40, 6, 12, 4);
        let index = ClusteredIndex::build(train.view(), Metric::SquaredEuclidean, 12);
        let (table, stats) = index.topk_with_stats(queries.view(), 5);
        assert_eq!(table, knn_reference(train.view(), queries.view(), Metric::SquaredEuclidean, 5));
        assert!(stats.clusters_visited < stats.clusters_total, "{stats:?}");
        assert!(stats.cluster_prune_rate() > 0.5, "rate {} ({stats:?})", stats.cluster_prune_rate());
        assert!(stats.rows_scanned + stats.rows_pruned <= stats.rows_total);
        assert_eq!(stats.queries, 40);
    }

    #[test]
    fn loo_matches_reference_and_excludes_self() {
        let data = blobs(150, 5, 6, 7);
        for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
            let index = ClusteredIndex::build(data.view(), metric, 6);
            for k in [1usize, 4, 150] {
                let got = index.topk_loo(data.view(), k);
                assert_eq!(got, knn_reference_loo(data.view(), metric, k), "metric {} k {k}", metric.name());
                for q in 0..got.num_queries() {
                    assert!(got.neighbors(q).iter().all(|h| h.index != q));
                }
            }
        }
    }

    #[test]
    fn degenerate_shapes_nlist_exceeding_n_single_cluster_duplicates() {
        // n < nlist: every row may become its own cluster.
        let tiny = blobs(5, 4, 2, 9);
        let q = blobs(7, 4, 2, 10);
        for nlist in [1usize, 5, 64] {
            let index = ClusteredIndex::build(tiny.view(), Metric::SquaredEuclidean, nlist);
            assert!(index.num_clusters() <= 5);
            assert_eq!(
                index.topk(q.view(), 3),
                knn_reference(tiny.view(), q.view(), Metric::SquaredEuclidean, 3)
            );
        }
        // All-identical rows: ties must resolve to the lowest original index.
        let dup = Matrix::from_fn(30, 4, |_, _| 2.5);
        let index = ClusteredIndex::build(dup.view(), Metric::Euclidean, 4);
        let table = index.topk(q.view().slice_rows(0, 3), 6);
        for qi in 0..3 {
            let idx: Vec<usize> = table.neighbors(qi).iter().map(|h| h.index).collect();
            assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn streamed_nearest_fold_matches_engine_fold() {
        let train = blobs(200, 5, 5, 21);
        let queries = blobs(33, 5, 5, 22);
        let engine = EvalEngine::with_threads(3);
        let mut expected = vec![NearestHit::NONE; 33];
        let mut got = vec![NearestHit::NONE; 33];
        let mut consumed = 0;
        for batch in train.view().batches(64) {
            engine.update_nearest(
                queries.view(),
                Metric::SquaredEuclidean,
                None,
                batch,
                None,
                consumed,
                &mut expected,
            );
            let index = ClusteredIndex::build_with_engine(batch, Metric::SquaredEuclidean, 4, engine);
            index.update_nearest(queries.view(), consumed, &mut got);
            consumed += batch.rows();
            assert_eq!(got, expected, "prefix {consumed}");
        }
    }

    #[test]
    fn backend_dispatch_falls_back_for_cosine_and_matches_everywhere() {
        let train = blobs(120, 6, 4, 31);
        let queries = blobs(25, 6, 4, 32);
        let engine = EvalEngine::parallel();
        for metric in Metric::all() {
            for backend in [EvalBackend::Exhaustive, EvalBackend::Clustered { nlist: 4 }] {
                let got = engine.topk_with_backend(train.view(), queries.view(), metric, 7, backend);
                assert_eq!(
                    got,
                    knn_reference(train.view(), queries.view(), metric, 7),
                    "metric {} backend {}",
                    metric.name(),
                    backend.name()
                );
                let loo = engine.topk_loo_with_backend(train.view(), metric, 3, backend);
                assert_eq!(loo, knn_reference_loo(train.view(), metric, 3));
            }
        }
    }

    #[test]
    fn auto_selection_thresholds() {
        use Metric::*;
        assert_eq!(EvalBackend::auto_for(100, 1000, SquaredEuclidean), EvalBackend::Exhaustive);
        assert_eq!(EvalBackend::auto_for(10_000, 4, SquaredEuclidean), EvalBackend::Exhaustive);
        assert_eq!(EvalBackend::auto_for(10_000, 1000, Cosine), EvalBackend::Exhaustive);
        assert_eq!(
            EvalBackend::auto_for(10_000, 1000, SquaredEuclidean),
            EvalBackend::Clustered { nlist: 100 }
        );
        assert_eq!(EvalBackend::Clustered { nlist: 50 }.resolve(10, SquaredEuclidean), Some(10));
        assert_eq!(EvalBackend::Clustered { nlist: 50 }.resolve(0, SquaredEuclidean), None);
        assert_eq!(EvalBackend::Clustered { nlist: 50 }.resolve(100, Cosine), None);
        assert_eq!(EvalBackend::Exhaustive.resolve(10_000, SquaredEuclidean), None);
    }

    #[test]
    fn subnormal_underflow_does_not_prune_zero_distance_ties() {
        // Both rows are within ~2e-23 of the query, so their f32 squared
        // distances (≈ 3e-46, 5e-46) round to exactly 0.0 — the exhaustive
        // kernel admits the LOWEST index by the (distance, index) tie-break.
        // Their pairwise squared distance (1.6e-45) stays a non-zero
        // subnormal, so k-means keeps them in separate clusters, and the
        // query visits index 1's cluster first (smaller centroid distance)
        // before admitting τ = 0. The f64 bound to index 0's cluster stays
        // positive, so a purely relative slack would prune the
        // lower-index-bearing cluster; the absolute guard must keep it
        // scanned.
        let train = Matrix::from_rows(&[vec![2.2e-23f32, 0.0], vec![-1.8e-23, 0.0]]);
        let queries = Matrix::from_rows(&[vec![0.0f32, 0.0]]);
        for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
            let reference = knn_reference(train.view(), queries.view(), metric, 1);
            assert_eq!(reference.first(0).expect("one hit").index, 0, "reference ties to index 0");
            // nlist = 2: each row becomes its own cluster, and the query
            // visits index 1's cluster first (smaller centroid distance).
            let index = ClusteredIndex::build(train.view(), metric, 2);
            assert_eq!(index.num_clusters(), 2);
            assert_eq!(index.topk(queries.view(), 1), reference, "metric {}", metric.name());
        }
    }

    #[test]
    #[should_panic(expected = "not triangle-prunable")]
    fn cosine_index_panics() {
        let data = blobs(10, 3, 2, 1);
        let _ = ClusteredIndex::build(data.view(), Metric::Cosine, 2);
    }
}
