//! Exact-pruned clustered nearest-neighbour index: a k-means coarse partition
//! plus triangle-inequality pruning, behind the same [`NeighborTable`]
//! handshake as the exhaustive engine.
//!
//! The exhaustive [`EvalEngine`] visits every training row per query —
//! `O(n · m · d)` for `n` training rows and `m` queries. On clustered
//! embedding spaces most of that work provably cannot change the answer:
//! once a query holds `k` candidates, whole clusters whose *lower bound* on
//! any member's distance exceeds the current k-th admitted distance can be
//! skipped without looking at a single row. [`ClusteredIndex`] implements
//! that sublinear-work path while keeping results **bit-identical** to the
//! exhaustive engine.
//!
//! ## Exactness argument
//!
//! Let `e(a, b)` be the true Euclidean distance. For a query `q`, a cluster
//! centroid `c` with radius `r_c = max_{x ∈ c} e(x, c)`, and a member row
//! `x`, the triangle inequality gives two lower bounds:
//!
//! * **cluster bound** — `e(q, x) ≥ max(0, e(q, c) − r_c)`,
//! * **per-row bound** — `e(q, x) ≥ |e(q, c) − e(x, c)|`.
//!
//! [`Metric::SquaredEuclidean`] and [`Metric::Euclidean`] are monotone
//! remappings of `e` (squaring, identity), so a bound `b` on `e` remaps to a
//! bound `b²` (resp. `b`) on the stored distance, and a candidate can only be
//! admitted if its remapped distance is lexicographically `< (τ, i)` where
//! `τ` is the current k-th admitted distance. A cluster or row is skipped
//! **only** when its remapped bound strictly exceeds `τ`; on equality it is
//! still scanned, because an equal-distance row with a lower global index
//! must still be admitted (the crate-wide `(distance, index)` tie-break).
//!
//! Floating point: the engine computes distances in `f32` through the
//! tile-blocked [`MetricKernel`] — the norm trick
//! `‖q − x‖² = ‖q‖² + ‖x‖² − 2⟨q, x⟩` — while the index computes all
//! centroid geometry (`e(q, c)`, `e(x, c)`, `r_c`) in `f64`, where it is
//! accurate to ~`2⁻⁵⁰`. The norm trick's rounding error is *absolute*, not
//! relative: cancellation between the norm and dot terms can make the
//! computed `f32` squared distance smaller than the true one by up to
//! `~(d + 11)·ε_f32·(‖q‖ + ‖x‖)²` (it is clamped at zero, which only raises
//! it). Every prune comparison therefore runs in **squared-distance space**
//! and requires
//!
//! ```text
//! lb² · (1 − (2d + 32)·ε)  −  coeff·ε·(‖q‖ + max_row_norm)²  >  τ² + guard
//! ```
//!
//! where `lb` is the `f64` Euclidean lower bound, the relative slack covers
//! the `f64` geometry, the absolute term (`coeff = 2(d + 16)`, a global
//! `max_row_norm` so the cluster scan order's early exit stays monotone in
//! `lb`) covers the kernel's cancellation error, `τ²` is the squared current
//! k-th admitted distance (inflated by `8ε` for Euclidean consumers to cover
//! the square root's rounding), and `guard` is the smallest normal `f32`,
//! covering subnormal underflow (a squared distance below the normal `f32`
//! range can round to exactly `0.0` while the `f64` bound stays positive) —
//! in particular a threshold of `0` (a perfect hit already admitted)
//! disables pruning outright. The slack and guards sacrifice a vanishing
//! amount of pruning power and never correctness; the proptests in
//! `proptest_clustered.rs` pin the bit-for-bit parity across metrics, `k`,
//! duplicate rows, and degenerate shapes, and the subnormal-underflow
//! regression test pins the guard.
//!
//! Inside a visited cluster, rows are evaluated with the engine's own tile
//! kernel ([`MetricKernel::tile_with`]) whenever a whole tile survives the
//! per-row bound (the common case), falling back to the bit-identical
//! per-pair path when a tile is broken by a pruned or self-excluded row —
//! distance values never depend on which path computed them.
//!
//! ## Two-phase int8 scan (the quantized shadow)
//!
//! After the tile kernels, a visited row's cost is dominated by *memory
//! traffic*: 4 bytes/dim of f32. [`ClusteredIndex::quantize`] attaches a
//! [`QuantizedShadow`] — a per-dimension affine int8 copy of the regrouped
//! rows (`x ≈ s ∘ X + o`, codes in `[−127, 127]`, stored
//! cluster-contiguous like the f32 buffer) — and visited clusters then scan
//! in two phases:
//!
//! 1. **Approximate phase** — an *integer* dot tile
//!    ([`snoopy_linalg::kernel::dot_q8_row_tile`], `i16 × i8 → i32`, exact
//!    and associative, hence trivially deterministic and free to
//!    autovectorize into widening multiply-adds) computes `â ≈ ‖q − x̂‖²`
//!    against each row's *reconstruction point* `x̂ = fl(s ∘ X) + o` from
//!    **one byte per dimension**: with `u = fl(q − o)` and `w = fl(u ∘ s)`,
//!    the query side is re-quantized onto one query-level scale `g`
//!    (`v = round(w / g)`, `|v| ≤ 8191`) and the norm trick gives
//!    `â = (‖u‖² + ‖y‖²) − 2g·⟨v, X⟩` finished in f64 from exact inputs,
//!    where `y = fl(s ∘ X)` and `‖y‖²` is precomputed per row.
//! 2. **Exact re-rank** — rows the widened bound below cannot exclude go
//!    through the *exact* f32 [`MetricKernel::pair_with`] and are offered
//!    into the same [`TopKState`], interleaved per tile so every admission
//!    tightens τ for the very next tile. Only the exact kernel's values are
//!    ever admitted, so the final [`NeighborTable`] is bit-identical to the
//!    exhaustive engine — phase 1 only decides *which* rows get the exact
//!    treatment.
//!
//! **Widened bound derivation.** The shadow stores, per row, an upper bound
//! `r_i ≥ e(x_i, x̂_i)` on the reconstruction distance (computed exactly in
//! f64 at encode time — clamping included — and rounded *up* into f32). The
//! triangle inequality gives `e(q, x_i) ≥ e(q, x̂_i) − r_i`. The computed
//! `â` approximates `e(q, x̂_i)²` with two separately-accounted error
//! sources:
//!
//! * **Float roundings** — forming `u`, `w`, and `y` (~5ε of products) plus
//!   the two fixed-order f32 norm accumulations; the integer dot and the
//!   f64 finishing contribute nothing at f32 scale. The inventory totals
//!   below `(d + 16)·ε_f32·(‖u‖ + M)²` where `M = max_i ‖y_i‖`; the shadow
//!   budgets `margin = 2(d + 32)·ε_f32·(‖u‖ + M)²` — double it.
//! * **Query quantization** — replacing `w` by `g·v` perturbs the dot term
//!   by `|2 Σ_j (w_j − g v_j) X_{ij}| ≤ 1.02·g·Σ_j |X_{ij}|` (half a step
//!   plus division-rounding slack per code). This is *exact per row*: the
//!   shadow stores `A_i = Σ_j |X_{ij}|` and the scan subtracts
//!   `qslack·A_i`, `qslack = 1.02·g`, instead of smearing a worst-case
//!   term over every row.
//!
//! Hence
//!
//! ```text
//! e(q, x̂_i)² ≥ â − margin − qslack·A_i
//! e(q, x_i)  ≥ √(max(0, â − margin − qslack·A_i)) − r_i
//! ```
//!
//! is a valid Euclidean lower bound, fed through *the same* slack + guard
//! comparison as the centroid bounds. To avoid a per-row square root the
//! scan precomputes (lazily, only when τ changes) the threshold
//! `T = √((τ² + guard + err) / slack)` — the `prunes` inequality solved for
//! the bound — and tests `â − margin − qslack·A_i > (T + r_i)²`, which is
//! exactly equivalent for non-negative operands. A row is skipped **only**
//! when the widened, slack-deflated bound strictly clears τ, so a
//! quantization error can only cost a wasted exact evaluation, never a
//! missed neighbour. The margin model is absolute, so it additionally
//! requires that no f32 intermediate overflows and that the integer dot
//! stays inside i32: norms above `snoopy-knn::quantized`'s
//! `MAX_SAFE_NORM = 10¹⁸` disable the shadow (whole index or single query),
//! widths above `MAX_QUANTIZED_DIMS = 2000` disable it at build, and both
//! fall back to the exact scan — see the overflow-guard notes in
//! [`crate::quantized`].
//!
//! In quantized mode the f64 per-row centroid bound is *replaced* by the
//! int8 bound inside visited clusters (reading the 8-byte `row_center`
//! entries would defeat the 1-byte/dim traffic goal); the cluster-level
//! bound and visit order are unchanged. [`PruneStats`] separates the two
//! phases: `rows_quantized` counts phase-1 approximate evaluations,
//! `rows_scanned` keeps its meaning of *exact* kernel evaluations (= the
//! re-rank count), and [`PruneStats::rerank_rate`] reports how tight the
//! int8 bound is in practice.
//!
//! [`Metric::Cosine`] is *not* a metric (no triangle inequality on the
//! dissimilarity), so cosine consumers always take the exhaustive path — the
//! [`EvalBackend`] dispatchers fall back automatically.
//!
//! ## Anatomy
//!
//! Construction runs [`lloyd_kmeans`] (seeded via `snoopy_linalg::rng`, so
//! indexes are deterministic), drops empty clusters, and regroups rows into
//! cluster-contiguous buffers via [`partition_rows`] — each regrouped row
//! remembers its original index, which is what gets admitted into
//! [`TopKState`]s so tie-breaks and downstream label lookups are oblivious
//! to the regrouping. A query computes all centroid distances, sorts
//! clusters by lower bound, and scans them in order with the same distance
//! expressions as the engine kernel until the next cluster's bound can no
//! longer beat the current k-th distance. Queries are chunked across the
//! configured engine's worker threads exactly like the exhaustive kernel;
//! per-cluster visit order is per-query, so the scan is a straight
//! row-contiguous loop rather than the engine's cross-query block walk.
//!
//! Every query path reports [`PruneStats`] — clusters visited vs total and
//! rows scanned vs pruned — which `bench_knn_json` emits into
//! `BENCH_knn.json` as the pruning-rate regression anchor.

use crate::bounds::{euclid_f64, norm_f64, PruneBounds};
use crate::engine::{EvalEngine, NeighborTable, TopKState};
use crate::kernel::MetricKernel;
use crate::metric::Metric;
use crate::quantized::{AffineQuantizer, QuantizedQuery, QuantizedShadow};
use snoopy_linalg::kmeans::{lloyd_kmeans, partition_rows, RowPartition};
use snoopy_linalg::{DatasetView, Matrix};

/// Which evaluation path a distance consumer routes through.
///
/// Both backends speak the same [`NeighborTable`] handshake and return
/// bit-identical tables; `Clustered` merely skips work that provably cannot
/// change the answer. Auto-selection ([`EvalBackend::auto_for`]) picks
/// `Clustered` once the training side is large enough to amortise the
/// k-means build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalBackend {
    /// The exhaustive blocked engine: every query visits every training row.
    Exhaustive,
    /// k-means coarse partition with `nlist` clusters plus exact
    /// triangle-inequality pruning (`nlist` is clamped to the training-row
    /// count at build time). Falls back to [`EvalBackend::Exhaustive`] for
    /// cosine dissimilarity and empty training sets.
    Clustered {
        /// Number of k-means clusters to partition the training rows into.
        nlist: usize,
        /// Attach the int8 quantized shadow: visited clusters scan
        /// approximately at one byte per dimension and only bound-surviving
        /// rows are re-ranked through the exact f32 kernel (see the
        /// [module docs](self) — results stay bit-identical either way).
        quantize: bool,
    },
}

/// Minimum training rows before [`EvalBackend::auto_for`] picks clustering:
/// below this the k-means build costs more than the scans it saves.
pub const AUTO_MIN_TRAIN: usize = 4096;

/// Minimum queries before [`EvalBackend::auto_for`] picks clustering: the
/// build cost is amortised across queries.
pub const AUTO_MIN_QUERIES: usize = 32;

impl EvalBackend {
    /// Train-size auto-selection heuristic: clustering pays once the k-means
    /// build (`O(n · nlist · d)` per iteration) is amortised over enough
    /// queries, and is only sound for triangle-prunable metrics. Returns
    /// [`EvalBackend::Clustered`] with [`EvalBackend::default_nlist`] when
    /// `train_rows ≥` [`AUTO_MIN_TRAIN`], `num_queries ≥`
    /// [`AUTO_MIN_QUERIES`], and the metric is prunable; otherwise
    /// [`EvalBackend::Exhaustive`].
    pub fn auto_for(train_rows: usize, num_queries: usize, metric: Metric) -> EvalBackend {
        if Self::prunable(metric) && train_rows >= AUTO_MIN_TRAIN && num_queries >= AUTO_MIN_QUERIES {
            // Auto-selection stays unquantized: the shadow *adds* resident
            // memory (codes + per-row radii on top of the f32 rows) and only
            // pays off on scan-bound workloads — an explicit opt-in via
            // `EvalBackend::quantized` keeps the default footprint-neutral.
            Self::clustered(Self::default_nlist(train_rows))
        } else {
            EvalBackend::Exhaustive
        }
    }

    /// The plain clustered backend: coarse partition plus exact pruning,
    /// scanning visited rows in f32.
    pub const fn clustered(nlist: usize) -> EvalBackend {
        EvalBackend::Clustered { nlist, quantize: false }
    }

    /// The quantized clustered backend: same partition, but visited clusters
    /// run the two-phase int8-then-exact scan of the [module docs](self).
    pub const fn quantized(nlist: usize) -> EvalBackend {
        EvalBackend::Clustered { nlist, quantize: true }
    }

    /// The default cluster count for a training set: `⌈√n⌉`, the classic
    /// balance point where centroid scans and intra-cluster scans cost the
    /// same.
    pub fn default_nlist(train_rows: usize) -> usize {
        (train_rows as f64).sqrt().ceil().max(1.0) as usize
    }

    /// Whether `metric` admits triangle-inequality pruning (everything except
    /// cosine dissimilarity, which is not a metric).
    pub fn prunable(metric: Metric) -> bool {
        metric != Metric::Cosine
    }

    /// Resolves this backend against a concrete training set:
    /// `Some((nlist, quantize))` (`nlist` clamped to the row count) when the
    /// clustered path applies, `None` when the exhaustive engine must be
    /// used.
    pub fn resolve(&self, train_rows: usize, metric: Metric) -> Option<(usize, bool)> {
        match *self {
            EvalBackend::Exhaustive => None,
            EvalBackend::Clustered { nlist, quantize } => {
                (Self::prunable(metric) && train_rows > 0).then(|| (nlist.clamp(1, train_rows), quantize))
            }
        }
    }

    /// Short name for reports and benchmark JSON.
    pub fn name(&self) -> &'static str {
        match self {
            EvalBackend::Exhaustive => "exhaustive",
            EvalBackend::Clustered { quantize: false, .. } => "clustered",
            EvalBackend::Clustered { quantize: true, .. } => "quantized",
        }
    }
}

/// Pruning counters accumulated by clustered query paths.
///
/// `clusters_total` / `rows_total` count the work the exhaustive engine
/// would have done (per query); `clusters_visited` counts clusters whose
/// rows were looked at, `rows_scanned` counts *exact* distance evaluations
/// (on a quantized index: the phase-2 re-ranks), `rows_pruned` counts rows
/// skipped by a per-row bound inside visited clusters, and `rows_quantized`
/// counts phase-1 int8 approximate evaluations (zero on an unquantized
/// index). Rows in never-visited clusters appear in none of them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Queries answered.
    pub queries: usize,
    /// Clusters whose rows were scanned (summed over queries).
    pub clusters_visited: usize,
    /// Clusters times queries — the exhaustive cluster-visit count.
    pub clusters_total: usize,
    /// Exact query–row distance evaluations actually performed (phase 2 on
    /// a quantized index).
    pub rows_scanned: usize,
    /// Rows skipped by a per-row bound inside visited clusters.
    pub rows_pruned: usize,
    /// Training rows times queries — the exhaustive distance count.
    pub rows_total: usize,
    /// Phase-1 int8 approximate evaluations (candidate tests) on a
    /// quantized index; 0 on the f32 path.
    pub rows_quantized: usize,
}

impl PruneStats {
    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &PruneStats) {
        self.queries += other.queries;
        self.clusters_visited += other.clusters_visited;
        self.clusters_total += other.clusters_total;
        self.rows_scanned += other.rows_scanned;
        self.rows_pruned += other.rows_pruned;
        self.rows_total += other.rows_total;
        self.rows_quantized += other.rows_quantized;
    }

    /// Fraction of cluster visits skipped: `1 − visited / total` (0 when no
    /// query ran).
    pub fn cluster_prune_rate(&self) -> f64 {
        if self.clusters_total == 0 {
            0.0
        } else {
            1.0 - self.clusters_visited as f64 / self.clusters_total as f64
        }
    }

    /// Fraction of pairwise distances never evaluated exactly:
    /// `1 − scanned / total` (0 when no query ran).
    pub fn row_prune_rate(&self) -> f64 {
        if self.rows_total == 0 {
            0.0
        } else {
            1.0 - self.rows_scanned as f64 / self.rows_total as f64
        }
    }

    /// How loose the int8 bound was: the fraction of phase-1 approximate
    /// evaluations that still needed an exact re-rank,
    /// `rows_scanned / rows_quantized` (0 when nothing was quantized —
    /// callers asserting tightness should check `rows_quantized > 0`).
    pub fn rerank_rate(&self) -> f64 {
        if self.rows_quantized == 0 {
            0.0
        } else {
            self.rows_scanned as f64 / self.rows_quantized as f64
        }
    }
}

/// Deterministic seed for the index's internal k-means run. Clustering
/// quality only affects speed, never results, so a fixed seed keeps index
/// builds reproducible without threading a seed through every call site.
pub const KMEANS_SEED: u64 = 0x5e3d_c0de;

/// Iteration cap for the internal k-means run: Lloyd's converges fast on the
/// coarse partitions used here, and a stale assignment only costs pruning
/// power, never correctness.
const KMEANS_MAX_ITERS: usize = 16;

/// The exact-pruned clustered index. See the [module docs](self) for the
/// bound derivation and exactness argument.
#[derive(Debug, Clone)]
pub struct ClusteredIndex {
    /// The tile kernel: the metric plus the norm cache of the regrouped
    /// rows (bound as its train side). All distance evaluations inside
    /// visited clusters go through it — the same expressions, the same
    /// bits, as the exhaustive engine.
    kernel: MetricKernel,
    /// Regrouped cluster-contiguous rows (a copy of the training rows —
    /// bit-identical values, new order).
    data: Matrix,
    /// Regrouped row → original training-row index (what gets admitted).
    original: Vec<usize>,
    /// Cluster `c` occupies regrouped rows `offsets[c]..offsets[c + 1]`.
    offsets: Vec<usize>,
    /// `nlist × d` centroids (empty clusters dropped).
    centroids: Matrix,
    /// Per-cluster radius `r_c = max_{x ∈ c} e(x, c)` in `f64`.
    radii: Vec<f64>,
    /// Per regrouped row: `e(x, c)` to its own centroid in `f64`.
    row_center: Vec<f64>,
    /// The prune-comparison constants (slack, kernel-error coefficient,
    /// subnormal guard, global max member norm) — shared arithmetic with the
    /// shard-paged index, see [`crate::bounds`].
    bounds: PruneBounds,
    /// The int8 shadow copy driving the two-phase scan — `None` until
    /// [`ClusteredIndex::quantize`] (or when the overflow guard rejected
    /// the data, in which case scans stay exact-only).
    shadow: Option<QuantizedShadow>,
    engine: EvalEngine,
}

/// Resident heap footprint of a [`ClusteredIndex`], bucketed by role —
/// reported by [`ClusteredIndex::resident_bytes`] so the shadow's footprint
/// claims are measured, not asserted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidentBytes {
    /// The regrouped f32 training rows (what an unquantized scan streams).
    pub train_rows: usize,
    /// The int8 codes (what a quantized phase-1 scan streams per row) —
    /// exactly `train_rows / 4` when quantized, 0 otherwise.
    pub quantized_codes: usize,
    /// Quantized per-row book-keeping: code norms, reconstruction radii,
    /// and the affine parameters.
    pub quantized_meta: usize,
    /// Centroid rows plus per-cluster radii and offsets.
    pub centroids: usize,
    /// Per-row index metadata: centroid distances, original-row ids, and
    /// the kernel's norm cache.
    pub row_meta: usize,
}

impl ResidentBytes {
    /// Sum over all buckets.
    pub fn total(&self) -> usize {
        self.train_rows + self.quantized_codes + self.quantized_meta + self.centroids + self.row_meta
    }
}

impl ClusteredIndex {
    /// Builds an index over `train` with (at most) `nlist` k-means clusters,
    /// using a parallel default engine for the build and later queries.
    ///
    /// # Panics
    /// Panics for [`Metric::Cosine`] (not triangle-prunable — use
    /// [`EvalBackend::resolve`] to fall back) or an empty `train`.
    pub fn build(train: DatasetView<'_>, metric: Metric, nlist: usize) -> Self {
        Self::build_with_engine(train, metric, nlist, EvalEngine::parallel())
    }

    /// [`ClusteredIndex::build`] with an explicit engine: the engine's thread
    /// count drives both the k-means assignment passes and later query
    /// chunking.
    pub fn build_with_engine(
        train: DatasetView<'_>,
        metric: Metric,
        nlist: usize,
        engine: EvalEngine,
    ) -> Self {
        assert!(!train.is_empty(), "cannot build a clustered index over an empty dataset");
        let km = lloyd_kmeans(train, nlist, KMEANS_MAX_ITERS, KMEANS_SEED, engine.threads());
        Self::from_assignments(train, metric, &km.centroids, &km.assignments, engine)
    }

    /// Builds an index from a *given* partition — `assignments[i]` is row
    /// `i`'s cluster against `centroids` — skipping the k-means run. Any
    /// total assignment yields valid triangle-inequality bounds (a poor one
    /// only costs pruning power), which is what lets the incremental top-k
    /// state fold appended batches against the centroids of an *earlier*
    /// partition instead of re-clustering per batch.
    ///
    /// # Panics
    /// Panics for [`Metric::Cosine`], an empty `train`, an assignment count
    /// mismatch, or an assignment out of `centroids`' range.
    pub fn from_assignments(
        train: DatasetView<'_>,
        metric: Metric,
        centroids: &Matrix,
        assignments: &[usize],
        engine: EvalEngine,
    ) -> Self {
        assert!(EvalBackend::prunable(metric), "cosine dissimilarity is not triangle-prunable");
        assert!(!train.is_empty(), "cannot build a clustered index over an empty dataset");
        assert_eq!(assignments.len(), train.rows(), "one assignment per training row required");
        let k = centroids.rows();

        // Compact away empty clusters so queries never bound-check them.
        let mut counts = vec![0usize; k];
        for &a in assignments {
            assert!(a < k, "assignment {a} out of range for {k} centroids");
            counts[a] += 1;
        }
        let keep: Vec<usize> = (0..k).filter(|&c| counts[c] > 0).collect();
        let mut remap = vec![usize::MAX; k];
        for (new, &old) in keep.iter().enumerate() {
            remap[old] = new;
        }
        let assignments: Vec<usize> = assignments.iter().map(|&a| remap[a]).collect();
        let centroids = centroids.view().select_rows(&keep);

        let part = partition_rows(train, &assignments, keep.len());
        let mut row_center = Vec::with_capacity(train.rows());
        let mut radii = vec![0.0f64; keep.len()];
        let mut max_norm = 0.0f64;
        for (c, radius) in radii.iter_mut().enumerate() {
            let cent = centroids.row(c);
            for r in part.offsets[c]..part.offsets[c + 1] {
                let row = part.data.row(r);
                let d = euclid_f64(row, cent);
                row_center.push(d);
                *radius = radius.max(d);
                max_norm = max_norm.max(norm_f64(row));
            }
        }
        let mut kernel = MetricKernel::new(metric);
        kernel.bind_train(part.data.view());
        Self {
            kernel,
            data: part.data,
            original: part.original,
            offsets: part.offsets,
            centroids,
            radii,
            row_center,
            bounds: PruneBounds::new(metric, train.cols(), max_norm),
            shadow: None,
            engine,
        }
    }

    /// Attaches the int8 shadow, fitting the per-dimension affine over the
    /// indexed rows themselves: visited clusters switch to the two-phase
    /// scan of the [module docs](self). Results stay bit-identical; on data
    /// whose norms break the overflow guard the shadow is silently skipped
    /// and scans stay exact-only.
    pub fn quantize(mut self) -> Self {
        let quantizer = AffineQuantizer::fit(self.data.view());
        self.quantize_with(quantizer);
        self
    }

    /// Attaches the int8 shadow against a *frozen* quantizer (the
    /// incremental append path encodes every batch with the affine of the
    /// last full partition, so bounds stay valid without re-fitting per
    /// batch — out-of-range rows are clamped and simply carry a larger
    /// reconstruction radius).
    ///
    /// # Panics
    /// Panics if `quantizer` was fitted for a different dimensionality.
    pub fn quantize_with(&mut self, quantizer: AffineQuantizer) {
        self.shadow = QuantizedShadow::build(self.data.view(), quantizer);
    }

    /// Whether an int8 shadow is attached (false when the overflow guard
    /// rejected the data).
    pub fn is_quantized(&self) -> bool {
        self.shadow.is_some()
    }

    /// Removes every row whose *original* training index satisfies `evict`,
    /// compacting the cluster-contiguous row buffers, the per-row metadata,
    /// the int8 shadow (codes and bound bookkeeping), and dropping clusters
    /// that become empty — so [`ClusteredIndex::resident_bytes`] shrinks
    /// truthfully. Surviving cluster radii are recomputed from the surviving
    /// members; `max_norm` (a global upper bound in the kernel-error term) is
    /// kept as-is — still a valid bound for the subset, trading a sliver of
    /// pruning power until the next full re-partition. Results stay
    /// bit-identical to an index built cold over the surviving rows with the
    /// same assignment. Returns the number of rows removed.
    ///
    /// The index may become empty; queries against an empty index admit
    /// nothing (the sliding-window caller replaces it at that point).
    pub fn evict_rows(&mut self, evict: impl Fn(usize) -> bool) -> usize {
        let keep: Vec<bool> = self.original.iter().map(|&o| !evict(o)).collect();
        if keep.iter().all(|&k| k) {
            return 0;
        }
        // Compact the per-row centroid distances in the same keep order.
        let mut kept = 0usize;
        for (r, &k) in keep.iter().enumerate() {
            if k {
                self.row_center[kept] = self.row_center[r];
                kept += 1;
            }
        }
        self.row_center.truncate(kept);
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.retain_rows(&keep);
        }
        // Reuse the partition bookkeeping for rows / originals / offsets.
        let mut part = RowPartition {
            data: std::mem::replace(&mut self.data, Matrix::zeros(0, 0)),
            offsets: std::mem::take(&mut self.offsets),
            original: std::mem::take(&mut self.original),
        };
        let removed = part.retain_rows(&keep);
        // Drop clusters that became empty, keeping centroid/radius/offset
        // arrays aligned, and re-tighten surviving radii.
        let groups = part.groups();
        let keep_clusters: Vec<usize> = (0..groups).filter(|&c| part.group_len(c) > 0).collect();
        if keep_clusters.len() != groups {
            self.centroids = self.centroids.view().select_rows(&keep_clusters);
            let mut offsets = Vec::with_capacity(keep_clusters.len() + 1);
            offsets.push(0usize);
            for &c in &keep_clusters {
                offsets.push(offsets.last().expect("non-empty") + part.group_len(c));
            }
            part.offsets = offsets;
        }
        self.radii.clear();
        for c in 0..part.offsets.len() - 1 {
            let members = &self.row_center[part.offsets[c]..part.offsets[c + 1]];
            self.radii.push(members.iter().fold(0.0f64, |r, &d| r.max(d)));
        }
        self.data = part.data;
        self.offsets = part.offsets;
        self.original = part.original;
        self.kernel.bind_train(self.data.view());
        removed
    }

    /// The resident heap footprint of the index, bucketed by role.
    pub fn resident_bytes(&self) -> ResidentBytes {
        ResidentBytes {
            train_rows: self.data.rows() * self.data.cols() * size_of::<f32>(),
            quantized_codes: self.shadow.as_ref().map_or(0, |s| s.code_bytes()),
            quantized_meta: self.shadow.as_ref().map_or(0, |s| s.meta_bytes()),
            centroids: self.centroids.rows() * self.centroids.cols() * size_of::<f32>()
                + self.radii.len() * size_of::<f64>()
                + self.offsets.len() * size_of::<usize>(),
            row_meta: self.row_center.len() * size_of::<f64>()
                + self.original.len() * size_of::<usize>()
                + self.kernel.train_bound() * size_of::<f32>(),
        }
    }

    /// Replaces the engine driving query-chunk parallelism.
    pub fn with_engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Swaps the engine in place.
    pub fn set_engine(&mut self, engine: EvalEngine) {
        self.engine = engine;
    }

    /// Number of indexed training rows.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// Whether the index is empty (possible only after
    /// [`ClusteredIndex::evict_rows`] removed every row — an empty index
    /// admits nothing).
    pub fn is_empty(&self) -> bool {
        self.data.rows() == 0
    }

    /// Number of (non-empty) clusters.
    pub fn num_clusters(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The metric the index was built for.
    pub fn metric(&self) -> Metric {
        self.kernel.metric()
    }

    /// The current stored threshold mapped into squared-distance space with
    /// the safety inflation of the module docs: the stored distance itself
    /// for squared-Euclidean consumers, `τ²·(1 + 8ε)` for Euclidean ones
    /// (covering the square root's rounding). `∞` (state not yet full, in
    /// the 1NN path) maps to `∞` and never prunes.
    #[inline]
    fn tau_sq(&self, tau: f32) -> f64 {
        self.bounds.tau_sq(tau)
    }

    /// The per-query kernel-error margin: how far below the true squared
    /// distance the norm-trick `f32` kernel can land for any indexed row
    /// (`qn` is the query's `f64` Euclidean norm).
    #[inline]
    fn kernel_err(&self, qn: f64) -> f64 {
        self.bounds.kernel_err(qn)
    }

    /// Whether a Euclidean-space lower bound `lb` proves that no candidate
    /// can be admitted against the squared threshold `tau_sq`: the squared,
    /// slack-deflated bound must clear it by the kernel-error margin `err`
    /// plus the absolute subnormal guard. Monotone in `lb` for a fixed
    /// query, which is what lets the bound-ordered cluster scan stop at the
    /// first pruned cluster.
    #[inline]
    fn prunes(&self, lb: f64, tau_sq: f64, err: f64) -> bool {
        self.bounds.prunes(lb, tau_sq, err)
    }

    /// The [`ClusteredIndex::prunes`] inequality solved for the bound: a
    /// non-negative Euclidean lower bound prunes iff it strictly exceeds
    /// `√((τ² + guard + err) / slack)`. The quantized scan caches this per
    /// τ value so the per-row test `â − margin > (T + r_i)²` needs no
    /// square root (`τ = ∞`, state not yet full, maps to `∞` and never
    /// prunes).
    #[inline]
    fn prune_threshold(&self, tau: f32, err: f64) -> f64 {
        self.bounds.prune_threshold(tau, err)
    }

    /// Shared per-query preamble: fills `order` with
    /// `(lower bound, centroid distance, cluster)` triples sorted ascending
    /// by bound (ties to the lowest cluster id) and books the exhaustive
    /// work this query would have cost into `stats`.
    fn order_clusters(&self, q: &[f32], order: &mut Vec<(f64, f64, usize)>, stats: &mut PruneStats) {
        order.clear();
        for (c, cent) in self.centroids.rows_iter().enumerate() {
            let dqc = euclid_f64(q, cent);
            order.push(((dqc - self.radii[c]).max(0.0), dqc, c));
        }
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        stats.queries += 1;
        stats.clusters_total += self.num_clusters();
        stats.rows_total += self.data.rows();
    }

    /// Shared chunk-parallel driver: splits `slots` (one per query) into one
    /// contiguous chunk per engine worker thread, runs `chunk_fn(start,
    /// chunk)` on each, and merges the per-chunk [`PruneStats`].
    fn fan_out<S, F>(&self, slots: &mut [S], chunk_fn: F) -> PruneStats
    where
        S: Send,
        F: Fn(usize, &mut [S]) -> PruneStats + Sync,
    {
        let n = slots.len();
        if n == 0 {
            return PruneStats::default();
        }
        let threads = self.engine.threads().min(n);
        if threads <= 1 {
            return chunk_fn(0, slots);
        }
        let chunk = n.div_ceil(threads);
        let mut stats = vec![PruneStats::default(); n.div_ceil(chunk)];
        snoopy_pool::scope(|scope| {
            for ((t, slot), stat) in slots.chunks_mut(chunk).enumerate().zip(stats.iter_mut()) {
                let start = t * chunk;
                let chunk_fn = &chunk_fn;
                scope.spawn(move || {
                    *stat = chunk_fn(start, slot);
                });
            }
        });
        let mut total = PruneStats::default();
        for s in &stats {
            total.merge(s);
        }
        total
    }

    /// Scans the rows of one visited cluster into `state`, one distance tile
    /// at a time: a tile unbroken by the per-row bound or the self-exclusion
    /// goes through the engine's tile kernel; a broken tile falls back to
    /// the bit-identical per-pair path with a live (row-by-row) threshold.
    #[allow(clippy::too_many_arguments)] // the scan's full per-query context
    fn scan_cluster_topk(
        &self,
        q: &[f32],
        qv: f32,
        dqc: f64,
        err: f64,
        cluster: usize,
        offset: usize,
        skip: usize,
        state: &mut TopKState,
        tile: &mut [f32],
        stats: &mut PruneStats,
    ) {
        let data = self.data.view();
        let (s, e) = (self.offsets[cluster], self.offsets[cluster + 1]);
        let mut r = s;
        while r < e {
            let len = tile.len().min(e - r);
            // Pre-pass: is the whole tile admissible as one kernel call?
            // (The tile-start τ is stale after mid-tile admissions, but a
            // stale — larger — τ only keeps rows a fresh one might prune,
            // so exactness never depends on it.)
            let mut fast =
                skip == usize::MAX || !self.original[r..r + len].iter().any(|&o| offset + o == skip);
            if fast && state.hits().len() == state.k() {
                let tau_sq = self.tau_sq(state.hits().last().expect("full state").distance);
                fast = !(r..r + len).any(|j| self.prunes((dqc - self.row_center[j]).abs(), tau_sq, err));
            }
            if fast {
                let out = &mut tile[..len];
                self.kernel.tile_with(q, qv, data, r, out);
                for (j, &d) in out.iter().enumerate() {
                    state.offer(d, offset + self.original[r + j]);
                }
                stats.rows_scanned += len;
            } else {
                for j in r..r + len {
                    let global = offset + self.original[j];
                    if global == skip {
                        continue;
                    }
                    if state.hits().len() == state.k() {
                        let tau_sq = self.tau_sq(state.hits().last().expect("full state").distance);
                        if self.prunes((dqc - self.row_center[j]).abs(), tau_sq, err) {
                            stats.rows_pruned += 1;
                            continue;
                        }
                    }
                    state.offer(self.kernel.pair_with(q, qv, data, j), global);
                    stats.rows_scanned += 1;
                }
            }
            r += len;
        }
    }

    /// The two-phase scan of one visited cluster on a quantized index:
    /// phase 1 computes the exact integer dots of a whole tile from the int8
    /// codes (one byte per dimension of row traffic) and classifies the tile
    /// against the widened bound in one straight-line f64 pass; phase 2
    /// re-ranks the surviving rows through the exact per-pair kernel —
    /// interleaved per tile, so each admission tightens τ for the next tile.
    /// The classify pass uses the τ of the tile *start* (a stale — larger —
    /// τ only keeps rows a fresh one might prune, so exactness never depends
    /// on it) and the prune threshold `T` is recomputed only when τ changes
    /// (see [`ClusteredIndex::prune_threshold`]).
    #[allow(clippy::too_many_arguments)] // the scan's full per-query context
    fn scan_cluster_quantized(
        &self,
        shadow: &QuantizedShadow,
        qq: &QuantizedQuery,
        v: &[i16],
        q: &[f32],
        qv: f32,
        err: f64,
        cluster: usize,
        offset: usize,
        skip: usize,
        state: &mut TopKState,
        qtile: &mut [i32],
        keep: &mut [bool],
        stats: &mut PruneStats,
    ) {
        let data = self.data.view();
        let (s, e) = (self.offsets[cluster], self.offsets[cluster + 1]);
        let mut cached_tau = f32::NAN; // NaN ≠ everything → first full state recomputes
        let mut cached_threshold = f64::INFINITY;
        let mut r = s;
        while r < e {
            let len = qtile.len().min(e - r);
            let dots = &mut qtile[..len];
            shadow.approx_dot_tile(v, r, dots);
            stats.rows_quantized += len;
            let threshold = if state.hits().len() == state.k() {
                let tau = state.hits().last().expect("full state").distance;
                if tau != cached_tau {
                    cached_tau = tau;
                    cached_threshold = self.prune_threshold(tau, err);
                }
                cached_threshold
            } else {
                f64::INFINITY // not full: every row survives classification
            };
            shadow.classify_tile(qq, threshold, r, dots, &mut keep[..len]);
            for (j, &kept) in keep[..len].iter().enumerate() {
                if !kept {
                    stats.rows_pruned += 1;
                    continue;
                }
                let row = r + j;
                let global = offset + self.original[row];
                if global == skip {
                    continue;
                }
                state.offer(self.kernel.pair_with(q, qv, data, row), global);
                stats.rows_scanned += 1;
            }
            r += len;
        }
    }

    /// Answers one query into `state`: orders clusters by lower bound, scans
    /// until the bound can no longer beat the k-th admitted distance, and
    /// applies the per-row bound inside visited clusters. `skip` is a global
    /// training index to exclude (leave-one-out), `usize::MAX` for none.
    #[allow(clippy::too_many_arguments)] // the scan's full per-query context
    fn query_into(
        &self,
        q: &[f32],
        offset: usize,
        skip: usize,
        state: &mut TopKState,
        order: &mut Vec<(f64, f64, usize)>,
        tile: &mut [f32],
        qtile: &mut [i32],
        keep: &mut [bool],
        wbuf: &mut Vec<f32>,
        vbuf: &mut Vec<i16>,
        stats: &mut PruneStats,
    ) {
        self.order_clusters(q, order, stats);
        let qv = self.kernel.query_value(q);
        let err = self.kernel_err(norm_f64(q));
        // `None` either because the index is unquantized or because this
        // query's norm trips the overflow guard — both fall back to the
        // exact f32 scan (bit-identical, just no phase-1 savings).
        let qq = self.shadow.as_ref().and_then(|sh| sh.prepare_query(q, wbuf, vbuf));
        for &(lb, dqc, c) in order.iter() {
            if state.hits().len() == state.k() {
                let tau_sq = self.tau_sq(state.hits().last().expect("full state").distance);
                // Clusters are ordered by ascending bound and τ only shrinks,
                // so the first unbeatable cluster ends the query.
                if self.prunes(lb, tau_sq, err) {
                    break;
                }
            }
            stats.clusters_visited += 1;
            match (&self.shadow, &qq) {
                (Some(sh), Some(qq)) => self.scan_cluster_quantized(
                    sh, qq, vbuf, q, qv, err, c, offset, skip, state, qtile, keep, stats,
                ),
                _ => self.scan_cluster_topk(q, qv, dqc, err, c, offset, skip, state, tile, stats),
            }
        }
    }

    /// Answers queries `[start, start + states.len())` serially, reusing one
    /// cluster-order scratch buffer, the f32 and i32 tile buffers, and the
    /// quantized query scratch (scaled residual + i16 codes).
    fn query_chunk(
        &self,
        queries: DatasetView<'_>,
        start: usize,
        offset: usize,
        states: &mut [TopKState],
        exclude_self: Option<usize>,
    ) -> PruneStats {
        let mut stats = PruneStats::default();
        let mut order = Vec::with_capacity(self.num_clusters());
        let tile_len = self.engine.tile_rows().min(self.data.rows().max(1));
        let mut tile = vec![0.0f32; tile_len];
        let quantized = self.shadow.is_some();
        let mut qtile = vec![0i32; if quantized { tile_len } else { 0 }];
        let mut keep = vec![false; if quantized { tile_len } else { 0 }];
        let mut wbuf = Vec::with_capacity(if quantized { self.data.cols() } else { 0 });
        let mut vbuf = Vec::with_capacity(if quantized { self.data.cols() } else { 0 });
        for (qi, state) in states.iter_mut().enumerate() {
            let skip = exclude_self.map(|b| b + start + qi).unwrap_or(usize::MAX);
            self.query_into(
                queries.row(start + qi),
                offset,
                skip,
                state,
                &mut order,
                &mut tile,
                &mut qtile,
                &mut keep,
                &mut wbuf,
                &mut vbuf,
                &mut stats,
            );
        }
        stats
    }

    /// Folds the indexed training rows (global indices = original row index
    /// plus `offset`) into the running top-k state of every query row — the
    /// pruned counterpart of [`EvalEngine::update_topk`], with the same
    /// streamable fold semantics: pre-seeded states tighten the pruning
    /// threshold from the first cluster. `exclude_self = Some(base)`
    /// declares query row `i` to be global training row `base + i` and skips
    /// that one pair (leave-one-out).
    ///
    /// # Panics
    /// Panics on dimension mismatches or `states.len() != queries.rows()`.
    pub fn update_topk(
        &self,
        queries: DatasetView<'_>,
        offset: usize,
        states: &mut [TopKState],
        exclude_self: Option<usize>,
    ) -> PruneStats {
        assert_eq!(queries.cols(), self.data.cols(), "query/train dimensionality mismatch");
        assert_eq!(states.len(), queries.rows(), "one top-k state per query required");
        self.fan_out(states, |start, slot| self.query_chunk(queries, start, offset, slot, exclude_self))
    }

    /// Top-k neighbour table for every query, from a cold start —
    /// bit-identical to [`EvalEngine::topk`] on the same data.
    pub fn topk(&self, queries: DatasetView<'_>, k: usize) -> NeighborTable {
        self.topk_with_stats(queries, k).0
    }

    /// [`ClusteredIndex::topk`] plus the pruning counters.
    pub fn topk_with_stats(&self, queries: DatasetView<'_>, k: usize) -> (NeighborTable, PruneStats) {
        let mut states = vec![TopKState::new(k.max(1)); queries.rows()];
        let stats = self.update_topk(queries, 0, &mut states, None);
        (NeighborTable::from_states(&states), stats)
    }

    /// Leave-one-out top-k table of the indexed data against itself (row `i`
    /// of `data` must be the view the index was built over) — bit-identical
    /// to [`EvalEngine::topk_loo`].
    pub fn topk_loo(&self, data: DatasetView<'_>, k: usize) -> NeighborTable {
        self.topk_loo_with_stats(data, k).0
    }

    /// [`ClusteredIndex::topk_loo`] plus the pruning counters.
    pub fn topk_loo_with_stats(&self, data: DatasetView<'_>, k: usize) -> (NeighborTable, PruneStats) {
        let mut states = vec![TopKState::new(k.max(1)); data.rows()];
        let stats = self.update_topk(data, 0, &mut states, Some(0));
        (NeighborTable::from_states(&states), stats)
    }
}

impl EvalEngine {
    /// [`EvalEngine::topk`] dispatched through an [`EvalBackend`]: the
    /// clustered path builds a [`ClusteredIndex`] (inheriting this engine's
    /// shape) and answers through it; unresolvable backends (cosine, empty
    /// train, `Exhaustive`) take the exhaustive kernel. Results are
    /// bit-identical either way.
    pub fn topk_with_backend(
        &self,
        train: DatasetView<'_>,
        queries: DatasetView<'_>,
        metric: Metric,
        k: usize,
        backend: EvalBackend,
    ) -> NeighborTable {
        match backend.resolve(train.rows(), metric) {
            Some((nlist, quantize)) => {
                let mut index = ClusteredIndex::build_with_engine(train, metric, nlist, *self);
                if quantize {
                    index = index.quantize();
                }
                index.topk(queries, k)
            }
            None => self.topk(train, queries, metric, k),
        }
    }

    /// [`EvalEngine::topk_loo`] dispatched through an [`EvalBackend`].
    pub fn topk_loo_with_backend(
        &self,
        data: DatasetView<'_>,
        metric: Metric,
        k: usize,
        backend: EvalBackend,
    ) -> NeighborTable {
        match backend.resolve(data.rows(), metric) {
            Some((nlist, quantize)) => {
                let mut index = ClusteredIndex::build_with_engine(data, metric, nlist, *self);
                if quantize {
                    index = index.quantize();
                }
                index.topk_loo(data, k)
            }
            None => self.topk_loo(data, metric, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{knn_reference, knn_reference_loo};

    fn blobs(n: usize, d: usize, centers: usize, seed: u64) -> Matrix {
        snoopy_testutil::blob_cloud(seed, n, d, centers, 6.0, 0.2)
    }

    #[test]
    fn clustered_topk_matches_reference_on_blobs() {
        let train = blobs(400, 8, 8, 1);
        let queries = blobs(60, 8, 8, 2);
        for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
            let index = ClusteredIndex::build(train.view(), metric, 8);
            for k in [1usize, 3, 10, 400] {
                let got = index.topk(queries.view(), k);
                assert_eq!(got, knn_reference(train.view(), queries.view(), metric, k), "k {k}");
            }
        }
    }

    #[test]
    fn pruning_actually_happens_on_separated_blobs() {
        let train = blobs(600, 6, 12, 3);
        let queries = blobs(40, 6, 12, 4);
        let index = ClusteredIndex::build(train.view(), Metric::SquaredEuclidean, 12);
        let (table, stats) = index.topk_with_stats(queries.view(), 5);
        assert_eq!(table, knn_reference(train.view(), queries.view(), Metric::SquaredEuclidean, 5));
        assert!(stats.clusters_visited < stats.clusters_total, "{stats:?}");
        assert!(stats.cluster_prune_rate() > 0.5, "rate {} ({stats:?})", stats.cluster_prune_rate());
        assert!(stats.rows_scanned + stats.rows_pruned <= stats.rows_total);
        assert_eq!(stats.queries, 40);
    }

    #[test]
    fn loo_matches_reference_and_excludes_self() {
        let data = blobs(150, 5, 6, 7);
        for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
            let index = ClusteredIndex::build(data.view(), metric, 6);
            for k in [1usize, 4, 150] {
                let got = index.topk_loo(data.view(), k);
                assert_eq!(got, knn_reference_loo(data.view(), metric, k), "metric {} k {k}", metric.name());
                for q in 0..got.num_queries() {
                    assert!(got.neighbors(q).iter().all(|h| h.index != q));
                }
            }
        }
    }

    #[test]
    fn degenerate_shapes_nlist_exceeding_n_single_cluster_duplicates() {
        // n < nlist: every row may become its own cluster.
        let tiny = blobs(5, 4, 2, 9);
        let q = blobs(7, 4, 2, 10);
        for nlist in [1usize, 5, 64] {
            let index = ClusteredIndex::build(tiny.view(), Metric::SquaredEuclidean, nlist);
            assert!(index.num_clusters() <= 5);
            assert_eq!(
                index.topk(q.view(), 3),
                knn_reference(tiny.view(), q.view(), Metric::SquaredEuclidean, 3)
            );
        }
        // All-identical rows: ties must resolve to the lowest original index.
        let dup = Matrix::from_fn(30, 4, |_, _| 2.5);
        let index = ClusteredIndex::build(dup.view(), Metric::Euclidean, 4);
        let table = index.topk(q.view().slice_rows(0, 3), 6);
        for qi in 0..3 {
            let idx: Vec<usize> = table.neighbors(qi).iter().map(|h| h.index).collect();
            assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn streamed_topk_fold_matches_engine_fold() {
        // Pre-seeded states from earlier batches tighten the pruning
        // threshold from the first cluster; results must still equal the
        // exhaustive engine's fold at every prefix (k = 1 and k = 3).
        let train = blobs(200, 5, 5, 21);
        let queries = blobs(33, 5, 5, 22);
        let engine = EvalEngine::with_threads(3);
        for k in [1usize, 3] {
            let mut kernel = MetricKernel::new(Metric::SquaredEuclidean);
            kernel.bind_queries(queries.view());
            let mut expected = vec![TopKState::new(k); 33];
            let mut got = vec![TopKState::new(k); 33];
            let mut consumed = 0;
            for batch in train.view().batches(64) {
                kernel.bind_train(batch);
                engine.update_topk(queries.view(), &kernel, batch, consumed, &mut expected, None);
                let index = ClusteredIndex::build_with_engine(batch, Metric::SquaredEuclidean, 4, engine);
                index.update_topk(queries.view(), consumed, &mut got, None);
                consumed += batch.rows();
                assert_eq!(got, expected, "k {k} prefix {consumed}");
            }
        }
    }

    #[test]
    fn backend_dispatch_falls_back_for_cosine_and_matches_everywhere() {
        let train = blobs(120, 6, 4, 31);
        let queries = blobs(25, 6, 4, 32);
        let engine = EvalEngine::parallel();
        for metric in Metric::all() {
            for backend in [EvalBackend::Exhaustive, EvalBackend::clustered(4), EvalBackend::quantized(4)] {
                let got = engine.topk_with_backend(train.view(), queries.view(), metric, 7, backend);
                assert_eq!(
                    got,
                    knn_reference(train.view(), queries.view(), metric, 7),
                    "metric {} backend {}",
                    metric.name(),
                    backend.name()
                );
                let loo = engine.topk_loo_with_backend(train.view(), metric, 3, backend);
                assert_eq!(loo, knn_reference_loo(train.view(), metric, 3));
            }
        }
    }

    #[test]
    fn auto_selection_thresholds() {
        use Metric::*;
        assert_eq!(EvalBackend::auto_for(100, 1000, SquaredEuclidean), EvalBackend::Exhaustive);
        assert_eq!(EvalBackend::auto_for(10_000, 4, SquaredEuclidean), EvalBackend::Exhaustive);
        assert_eq!(EvalBackend::auto_for(10_000, 1000, Cosine), EvalBackend::Exhaustive);
        assert_eq!(EvalBackend::auto_for(10_000, 1000, SquaredEuclidean), EvalBackend::clustered(100));
        assert_eq!(EvalBackend::clustered(50).resolve(10, SquaredEuclidean), Some((10, false)));
        assert_eq!(EvalBackend::quantized(50).resolve(10, SquaredEuclidean), Some((10, true)));
        assert_eq!(EvalBackend::clustered(50).resolve(0, SquaredEuclidean), None);
        assert_eq!(EvalBackend::clustered(50).resolve(100, Cosine), None);
        assert_eq!(EvalBackend::quantized(50).resolve(100, Cosine), None);
        assert_eq!(EvalBackend::Exhaustive.resolve(10_000, SquaredEuclidean), None);
        assert_eq!(EvalBackend::Exhaustive.name(), "exhaustive");
        assert_eq!(EvalBackend::clustered(5).name(), "clustered");
        assert_eq!(EvalBackend::quantized(5).name(), "quantized");
    }

    #[test]
    fn subnormal_underflow_does_not_prune_zero_distance_ties() {
        // Both rows are within ~2e-23 of the query, so their f32 squared
        // distances (≈ 3e-46, 5e-46) round to exactly 0.0 — the exhaustive
        // kernel admits the LOWEST index by the (distance, index) tie-break.
        // Their pairwise squared distance (1.6e-45) stays a non-zero
        // subnormal, so k-means keeps them in separate clusters, and the
        // query visits index 1's cluster first (smaller centroid distance)
        // before admitting τ = 0. The f64 bound to index 0's cluster stays
        // positive, so a purely relative slack would prune the
        // lower-index-bearing cluster; the absolute guard must keep it
        // scanned.
        let train = Matrix::from_rows(&[vec![2.2e-23f32, 0.0], vec![-1.8e-23, 0.0]]);
        let queries = Matrix::from_rows(&[vec![0.0f32, 0.0]]);
        for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
            let reference = knn_reference(train.view(), queries.view(), metric, 1);
            assert_eq!(reference.first(0).expect("one hit").index, 0, "reference ties to index 0");
            // nlist = 2: each row becomes its own cluster, and the query
            // visits index 1's cluster first (smaller centroid distance).
            let index = ClusteredIndex::build(train.view(), metric, 2);
            assert_eq!(index.num_clusters(), 2);
            assert_eq!(index.topk(queries.view(), 1), reference, "metric {}", metric.name());
        }
    }

    #[test]
    fn quantized_topk_and_loo_match_reference_bit_for_bit() {
        let train = blobs(500, 12, 10, 41);
        let queries = blobs(45, 12, 10, 42);
        for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
            let index = ClusteredIndex::build(train.view(), metric, 10).quantize();
            assert!(index.is_quantized());
            for k in [1usize, 3, 10, 500] {
                let got = index.topk(queries.view(), k);
                assert_eq!(got, knn_reference(train.view(), queries.view(), metric, k), "k {k}");
            }
            let loo = index.topk_loo(train.view(), 4);
            assert_eq!(loo, knn_reference_loo(train.view(), metric, 4), "loo {}", metric.name());
        }
    }

    #[test]
    fn quantized_scan_reranks_a_strict_subset_and_reports_phase_counters() {
        let train = blobs(800, 16, 12, 51);
        let queries = blobs(50, 16, 12, 52);
        let plain = ClusteredIndex::build(train.view(), Metric::SquaredEuclidean, 12);
        let quantized = plain.clone().quantize();
        let (table_p, stats_p) = plain.topk_with_stats(queries.view(), 5);
        let (table_q, stats_q) = quantized.topk_with_stats(queries.view(), 5);
        assert_eq!(table_p, table_q);
        assert_eq!(stats_p.rows_quantized, 0, "f32 path never counts phase 1");
        assert_eq!(stats_p.rerank_rate(), 0.0);
        assert!(stats_q.rows_quantized > 0, "{stats_q:?}");
        assert!(stats_q.rows_scanned < stats_q.rows_quantized, "int8 bound must prune: {stats_q:?}");
        assert!(stats_q.rerank_rate() < 1.0, "{stats_q:?}");
        assert!(
            stats_q.rows_scanned + stats_q.rows_pruned + stats_q.queries >= stats_q.rows_quantized,
            "every phase-1 row is re-ranked, pruned, or the self-skip: {stats_q:?}"
        );
    }

    #[test]
    fn quantized_resident_bytes_measures_the_4x_scan_copy() {
        let train = blobs(300, 32, 6, 61);
        let plain = ClusteredIndex::build(train.view(), Metric::SquaredEuclidean, 6);
        let rb_plain = plain.resident_bytes();
        assert_eq!(rb_plain.train_rows, 300 * 32 * 4);
        assert_eq!(rb_plain.quantized_codes, 0);
        assert_eq!(rb_plain.quantized_meta, 0);
        let quantized = plain.quantize();
        let rb = quantized.resident_bytes();
        assert_eq!(rb.train_rows, 300 * 32 * 4);
        assert_eq!(rb.quantized_codes * 4, rb.train_rows, "codes are exactly 4x smaller");
        // code norms + abs sums + radii (3 f32/row) + affine params (2 f32/dim).
        assert_eq!(rb.quantized_meta, 300 * 12 + 32 * 8);
        assert!(rb.total() > rb_plain.total());
        assert!(rb.centroids > 0 && rb.row_meta > 0);
    }

    #[test]
    fn quantized_subnormal_underflow_does_not_prune_zero_distance_ties() {
        // The quantized twin of the subnormal guard test: the int8 bound's
        // threshold path must also keep τ = 0 from pruning the lower-index
        // tie (the guard makes T ≥ √(guard) > any subnormal bound).
        let train = Matrix::from_rows(&[vec![2.2e-23f32, 0.0], vec![-1.8e-23, 0.0]]);
        let queries = Matrix::from_rows(&[vec![0.0f32, 0.0]]);
        for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
            let reference = knn_reference(train.view(), queries.view(), metric, 1);
            let index = ClusteredIndex::build(train.view(), metric, 2).quantize();
            assert_eq!(index.num_clusters(), 2);
            assert_eq!(index.topk(queries.view(), 1), reference, "metric {}", metric.name());
        }
    }

    #[test]
    fn quantized_extreme_magnitudes_fall_back_and_stay_exact() {
        // Data past the shadow's overflow guard (row norms ≈ √8·10¹⁸ >
        // MAX_SAFE_NORM) but still well inside the f32-finite regime the
        // exact kernel's error model requires: quantize() must refuse the
        // shadow and the scan must stay exact.
        let huge = Matrix::from_fn(40, 8, |r, c| if (r + c) % 2 == 0 { 1.0e18 } else { -1.0e18 });
        let index = ClusteredIndex::build(huge.view(), Metric::SquaredEuclidean, 4).quantize();
        assert!(!index.is_quantized(), "overflow guard must reject the shadow");
        let q = Matrix::from_fn(5, 8, |r, c| ((r * 8 + c) as f32).sin() * 1.0e18);
        assert_eq!(
            index.topk(q.view(), 3),
            knn_reference(huge.view(), q.view(), Metric::SquaredEuclidean, 3)
        );
        // Sane data, extreme query rows: those queries alone fall back
        // (`prepare_query` refuses norms past the guard, per query).
        let train = blobs(200, 8, 4, 71);
        let index = ClusteredIndex::build(train.view(), Metric::SquaredEuclidean, 4).quantize();
        assert!(index.is_quantized());
        let mut rows: Vec<Vec<f32>> = (0..4).map(|r| q.row(r).to_vec()).collect();
        rows.push(vec![2.0e18; 8]);
        let mixed = Matrix::from_rows(&rows);
        assert_eq!(
            index.topk(mixed.view(), 3),
            knn_reference(train.view(), mixed.view(), Metric::SquaredEuclidean, 3)
        );
    }

    #[test]
    #[should_panic(expected = "not triangle-prunable")]
    fn cosine_index_panics() {
        let data = blobs(10, 3, 2, 1);
        let _ = ClusteredIndex::build(data.view(), Metric::Cosine, 2);
    }
}
