//! Exact brute-force k-nearest-neighbour index over a borrowed
//! [`LabeledView`]. Every distance computation — single queries, parallel
//! batch queries, kNN classifier error, and the leave-one-out error — routes
//! through the shared [`EvalEngine`](crate::engine::EvalEngine) top-k kernel
//! and its [`NeighborTable`](crate::engine::NeighborTable) results, so tie
//! handling (lowest global index wins on equal distances) and floating-point
//! behaviour are identical across all of them. Selecting
//! [`EvalBackend::Clustered`] via [`BruteForceIndex::with_backend`] swaps
//! the scan for the exact-pruned [`ClusteredIndex`] — same handshake, same
//! bits, less work.
//!
//! With at most a few tens of thousands of samples per task replica and
//! moderate embedding dimensions, exact brute force in `O(n · d)` per query is
//! both simple and fast enough (the paper's own system computes exact 1NN on
//! GPU). The index borrows its training data — building one never clones a
//! feature matrix — and binds its [`MetricKernel`] train-side norm cache
//! once at construction, so batch queries pay one query-side norm pass and
//! nothing per query.

use crate::clustered::{ClusteredIndex, EvalBackend};
use crate::engine::{EvalEngine, NearestHit, NeighborTable, TopKState};
use crate::kernel::MetricKernel;
use crate::metric::Metric;
use snoopy_linalg::{DatasetView, LabeledView, Matrix};

/// A fitted brute-force index over a borrowed labelled training set.
#[derive(Debug, Clone)]
pub struct BruteForceIndex<'a> {
    view: LabeledView<'a>,
    /// The metric kernel with its train-side norm cache bound once to the
    /// indexed rows; query paths clone it and bind the query side per call
    /// (cloning copies one `f32` per training row — noise next to the
    /// `O(n·d)` scan it precedes).
    kernel: MetricKernel,
    /// Vote-vector size for majority voting: max(declared classes, labels
    /// present). Computed once — scanning labels per query is a hot-path tax.
    vote_classes: usize,
    engine: EvalEngine,
    backend: EvalBackend,
    /// Built once by [`BruteForceIndex::with_backend`] when the backend
    /// resolves to clustering; all query paths then route through it
    /// (results stay bit-identical to the exhaustive engine).
    clustered: Option<ClusteredIndex>,
}

/// One retrieved neighbour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the training set.
    pub index: usize,
    /// Dissimilarity to the query.
    pub distance: f32,
    /// Training label of the neighbour.
    pub label: u32,
}

impl<'a> BruteForceIndex<'a> {
    /// Builds an index borrowing `features` (one sample per row) and `labels`.
    ///
    /// # Panics
    /// Panics if the number of rows and labels differ or the index is empty.
    pub fn new(features: &'a Matrix, labels: &'a [u32], num_classes: usize, metric: Metric) -> Self {
        Self::from_view(LabeledView::new(features, labels).with_classes(num_classes), metric)
    }

    /// Builds an index from a shared labelled view (zero-copy).
    ///
    /// # Panics
    /// Panics if the view is empty.
    pub fn from_view(view: LabeledView<'a>, metric: Metric) -> Self {
        assert!(!view.is_empty(), "cannot build an empty index");
        let mut kernel = MetricKernel::new(metric);
        kernel.bind_train(view.features());
        let vote_classes = view.num_classes().max(view.observed_classes());
        Self {
            view,
            kernel,
            vote_classes,
            engine: EvalEngine::parallel(),
            backend: EvalBackend::Exhaustive,
            clustered: None,
        }
    }

    /// Replaces the evaluation engine (e.g. to force a serial reference run).
    /// A clustered backend, if selected, inherits the new engine's shape.
    pub fn with_engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        if let Some(ci) = self.clustered.as_mut() {
            ci.set_engine(engine);
        }
        self
    }

    /// Selects the evaluation backend. `Clustered` builds the coarse
    /// partition once, here; every subsequent query path (tables, batch
    /// queries, kNN error, leave-one-out) routes through the pruned index
    /// and returns bit-identical results to the exhaustive engine. Falls
    /// back to exhaustive for cosine (no triangle inequality).
    pub fn with_backend(mut self, backend: EvalBackend) -> Self {
        self.backend = backend;
        self.clustered = backend.resolve(self.len(), self.metric()).map(|(nlist, quantize)| {
            let index =
                ClusteredIndex::build_with_engine(self.view.features(), self.metric(), nlist, self.engine);
            if quantize {
                index.quantize()
            } else {
                index
            }
        });
        self
    }

    /// The backend selected at construction (`Exhaustive` by default).
    pub fn backend(&self) -> EvalBackend {
        self.backend
    }

    /// Number of indexed samples.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Whether the index is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// The metric used by the index.
    pub fn metric(&self) -> Metric {
        self.kernel.metric()
    }

    /// The labels of the indexed samples.
    pub fn labels(&self) -> &'a [u32] {
        self.view.labels()
    }

    /// The labelled view the index was built over.
    pub fn view(&self) -> LabeledView<'a> {
        self.view
    }

    fn hit_to_neighbor(&self, hit: NearestHit) -> Neighbor {
        if hit.index == usize::MAX {
            Neighbor { index: 0, distance: f32::INFINITY, label: 0 }
        } else {
            Neighbor { index: hit.index, distance: hit.distance, label: self.view.label(hit.index) }
        }
    }

    /// Top-`k` neighbour table for every row of `queries`, computed by the
    /// blocked chunk-parallel engine with the index's precomputed norm
    /// scratch. `k` is clamped to `[1, len]`; `k = 1` uses the flat
    /// one-slot-per-query layout (no per-query state allocation).
    pub fn neighbor_table<'q>(&self, queries: impl Into<DatasetView<'q>>, k: usize) -> NeighborTable {
        let queries = queries.into();
        let k = k.min(self.len()).max(1);
        if let Some(ci) = &self.clustered {
            return ci.topk(queries, k);
        }
        let mut kernel = self.kernel.clone();
        kernel.bind_queries(queries);
        if k == 1 {
            let mut best = vec![NearestHit::NONE; queries.rows()];
            self.engine.update_nearest(queries, &kernel, self.view.features(), 0, &mut best);
            NeighborTable::from_nearest(best)
        } else {
            let mut states = vec![TopKState::new(k); queries.rows()];
            self.engine.update_topk(queries, &kernel, self.view.features(), 0, &mut states, None);
            NeighborTable::from_states(&states)
        }
    }

    /// Finds the single nearest neighbour of `query`.
    pub fn query_1nn(&self, query: &[f32]) -> Neighbor {
        self.query_knn(query, 1)[0]
    }

    /// Finds the `k` nearest neighbours of `query`, ordered by increasing
    /// distance. `k` is clamped to the index size. Ties are deterministic:
    /// on equal distances the lowest training index wins — the same
    /// lexicographic `(distance, index)` rule as the engine's top-k kernel,
    /// which this routes through.
    pub fn query_knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let table = self.neighbor_table(DatasetView::from_row(query), k);
        table.neighbors(0).iter().map(|&h| self.hit_to_neighbor(h)).collect()
    }

    /// Majority-vote kNN prediction for `query`; vote ties resolve to the
    /// smallest class id among the tied classes (deterministic).
    pub fn predict_knn(&self, query: &[f32], k: usize) -> u32 {
        self.neighbor_table(DatasetView::from_row(query), k).vote(0, k, self.labels(), self.vote_classes)
    }

    /// 1NN predictions for every row of `queries`, computed by the parallel
    /// engine.
    pub fn predict_1nn_batch<'q>(&self, queries: impl Into<DatasetView<'q>>) -> Vec<u32> {
        self.nearest_neighbors_batch(queries).into_iter().map(|n| n.label).collect()
    }

    /// Nearest neighbour of every row of `queries`, computed by the blocked
    /// chunk-parallel engine (the `k = 1` neighbour table).
    pub fn nearest_neighbors_batch<'q>(&self, queries: impl Into<DatasetView<'q>>) -> Vec<Neighbor> {
        let table = self.neighbor_table(queries, 1);
        (0..table.num_queries()).map(|q| self.hit_to_neighbor(table.neighbors(q)[0])).collect()
    }

    /// kNN classifier error on a labelled query set (fraction of
    /// misclassified queries): one parallel top-k table pass, then a cheap
    /// serial vote.
    pub fn knn_error<'q>(&self, queries: impl Into<DatasetView<'q>>, query_labels: &[u32], k: usize) -> f64 {
        let queries = queries.into();
        assert_eq!(queries.rows(), query_labels.len(), "query feature/label mismatch");
        if query_labels.is_empty() {
            return 0.0;
        }
        self.neighbor_table(queries, k).knn_error(k, self.labels(), query_labels, self.vote_classes)
    }

    /// 1NN classifier error on a labelled query set.
    pub fn one_nn_error<'q>(&self, queries: impl Into<DatasetView<'q>>, query_labels: &[u32]) -> f64 {
        let queries = queries.into();
        assert_eq!(queries.rows(), query_labels.len(), "query feature/label mismatch");
        if query_labels.is_empty() {
            return 0.0;
        }
        let preds = self.predict_1nn_batch(queries);
        let wrong = preds.iter().zip(query_labels).filter(|(p, y)| p != y).count();
        wrong as f64 / query_labels.len() as f64
    }

    /// 1NN classifier error on a labelled evaluation view.
    pub fn one_nn_error_view(&self, eval: LabeledView<'_>) -> f64 {
        self.one_nn_error(eval.features(), eval.labels())
    }

    /// Leave-one-out top-`k` neighbour table on the *training* set itself:
    /// each row's neighbour list excludes that row. One parallel
    /// self-excluding engine pass ([`EvalEngine::topk_loo`]),
    /// `O(n² / threads)`.
    pub fn leave_one_out_table(&self, k: usize) -> NeighborTable {
        if let Some(ci) = &self.clustered {
            return ci.topk_loo(self.view.features(), k);
        }
        self.engine.topk_loo(self.view.features(), self.metric(), k)
    }

    /// Leave-one-out 1NN error on the *training* set itself (each sample's
    /// nearest neighbour excludes itself). Used by estimators that do not have
    /// a held-out split.
    pub fn leave_one_out_error(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        self.leave_one_out_table(1).one_nn_error(self.labels(), self.labels())
    }
}

/// Convenience helper: 1NN error of `train` evaluated on `test`, zero-copy.
pub fn one_nn_error(
    train_x: &Matrix,
    train_y: &[u32],
    test_x: &Matrix,
    test_y: &[u32],
    num_classes: usize,
    metric: Metric,
) -> f64 {
    BruteForceIndex::new(train_x, train_y, num_classes, metric).one_nn_error(test_x, test_y)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated clusters in 2D.
    fn clustered_data(n_per_class: usize) -> (Matrix, Vec<u32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let wobble = (i % 7) as f32 * 0.01;
            rows.push(vec![0.0 + wobble, 0.0 - wobble]);
            labels.push(0);
            rows.push(vec![10.0 - wobble, 10.0 + wobble]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn one_nn_on_separated_clusters_is_perfect() {
        let (x, y) = clustered_data(50);
        let index = BruteForceIndex::new(&x, &y, 2, Metric::SquaredEuclidean);
        assert_eq!(index.one_nn_error(&x, &y), 0.0);
        let query = [9.0f32, 9.5];
        assert_eq!(index.query_1nn(&query).label, 1);
    }

    #[test]
    fn index_borrows_rather_than_clones() {
        let (x, y) = clustered_data(10);
        let index = BruteForceIndex::from_view(LabeledView::new(&x, &y).with_classes(2), Metric::Cosine);
        // The indexed feature buffer is literally the caller's allocation.
        assert_eq!(index.view().features().data().as_ptr(), x.data().as_ptr());
        assert_eq!(index.len(), 20);
    }

    #[test]
    fn knn_returns_sorted_unique_neighbors() {
        let (x, y) = clustered_data(20);
        let index = BruteForceIndex::new(&x, &y, 2, Metric::Euclidean);
        let neigh = index.query_knn(&[0.0, 0.0], 5);
        assert_eq!(neigh.len(), 5);
        for w in neigh.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        let mut idx: Vec<usize> = neigh.iter().map(|n| n.index).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 5, "neighbours must be distinct");
    }

    #[test]
    fn k_is_clamped_and_majority_vote_works() {
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0]]);
        let y = vec![0, 0, 1];
        let index = BruteForceIndex::new(&x, &y, 2, Metric::SquaredEuclidean);
        assert_eq!(index.query_knn(&[0.0, 0.0], 10).len(), 3);
        assert_eq!(index.predict_knn(&[0.2, 0.0], 3), 0);
    }

    #[test]
    fn batch_matches_sequential() {
        let (x, y) = clustered_data(40);
        let index = BruteForceIndex::new(&x, &y, 2, Metric::SquaredEuclidean);
        let queries = Matrix::from_rows(&[vec![1.0, 1.0], vec![9.0, 9.0], vec![4.9, 5.1], vec![0.0, 0.2]]);
        let batch = index.nearest_neighbors_batch(&queries);
        for (i, item) in batch.iter().enumerate() {
            let single = index.query_1nn(queries.row(i));
            assert_eq!(item.index, single.index);
            assert_eq!(item.label, single.label);
        }
    }

    #[test]
    fn knn_error_decreases_with_separation() {
        // Overlapping clusters give non-zero error; separated give zero.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            rows.push(vec![i as f32 * 0.01, 0.0]);
            labels.push(0);
            rows.push(vec![i as f32 * 0.01 + 0.005, 0.0]);
            labels.push(1);
        }
        let x = Matrix::from_rows(&rows);
        let index = BruteForceIndex::new(&x, &labels, 2, Metric::SquaredEuclidean);
        let overlapping_err = index.knn_error(&x, &labels, 3);
        assert!(overlapping_err > 0.2, "overlapping error {overlapping_err}");

        let (sx, sy) = clustered_data(30);
        let sep_index = BruteForceIndex::new(&sx, &sy, 2, Metric::SquaredEuclidean);
        assert_eq!(sep_index.knn_error(&sx, &sy, 3), 0.0);
    }

    #[test]
    fn leave_one_out_error_detects_label_noise() {
        let (x, mut y) = clustered_data(25);
        let index_clean = BruteForceIndex::new(&x, &y, 2, Metric::SquaredEuclidean);
        assert_eq!(index_clean.leave_one_out_error(), 0.0);
        drop(index_clean);
        // Flip a quarter of the labels: LOO error must rise.
        for i in (0..y.len()).step_by(4) {
            y[i] = 1 - y[i];
        }
        let index_noisy = BruteForceIndex::new(&x, &y, 2, Metric::SquaredEuclidean);
        assert!(index_noisy.leave_one_out_error() > 0.2);
    }

    #[test]
    fn empty_query_set_gives_zero_error() {
        let (x, y) = clustered_data(5);
        let index = BruteForceIndex::new(&x, &y, 2, Metric::SquaredEuclidean);
        assert_eq!(index.one_nn_error(&Matrix::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    fn clustered_backend_matches_exhaustive_on_every_query_path() {
        let (x, y) = clustered_data(60);
        let queries = Matrix::from_rows(&[vec![1.0, 1.0], vec![9.0, 9.0], vec![4.9, 5.1], vec![0.0, 0.2]]);
        for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
            let exhaustive = BruteForceIndex::new(&x, &y, 2, metric);
            let clustered = BruteForceIndex::new(&x, &y, 2, metric)
                .with_backend(crate::clustered::EvalBackend::clustered(4));
            assert!(clustered.clustered.is_some());
            for k in [1usize, 3, 10] {
                assert_eq!(clustered.neighbor_table(&queries, k), exhaustive.neighbor_table(&queries, k));
                assert_eq!(clustered.leave_one_out_table(k), exhaustive.leave_one_out_table(k));
            }
            assert_eq!(clustered.leave_one_out_error().to_bits(), exhaustive.leave_one_out_error().to_bits());
            assert_eq!(clustered.query_knn(&[0.3, 0.1], 5), exhaustive.query_knn(&[0.3, 0.1], 5));
        }
        // Cosine resolves back to the exhaustive engine.
        let cosine = BruteForceIndex::new(&x, &y, 2, Metric::Cosine)
            .with_backend(crate::clustered::EvalBackend::clustered(4));
        assert!(cosine.clustered.is_none());
        assert_eq!(
            cosine.neighbor_table(&queries, 3),
            BruteForceIndex::new(&x, &y, 2, Metric::Cosine).neighbor_table(&queries, 3)
        );
    }

    #[test]
    #[should_panic(expected = "empty index")]
    fn empty_index_panics() {
        let empty = Matrix::zeros(0, 2);
        let labels: Vec<u32> = vec![];
        let _ = BruteForceIndex::new(&empty, &labels, 2, Metric::Euclidean);
    }
}
