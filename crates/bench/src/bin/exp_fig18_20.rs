//! Figures 18–20: evaluation and convergence of the 1NN estimator for
//! different transformations — (a) estimate versus label noise with the full
//! training set, (b) estimate versus training-set size without noise — for
//! every Table I dataset.

use snoopy_bench::{f4, scale_from_args, string_arg, ResultsTable};
use snoopy_data::noise::{ber_after_uniform_noise, NoiseModel};
use snoopy_data::registry::{load_clean, load_with_noise, table1_specs};
use snoopy_embeddings::zoo_for_task;
use snoopy_estimators::cover_hart_lower_bound;
use snoopy_knn::{BruteForceIndex, IncrementalTopK, Metric};

fn main() {
    let scale = scale_from_args();
    let only = string_arg("datasets", "all");
    let embeddings_of_interest = ["raw", "pca64", "efficientnet-b7", "xlnet", "use-large", "nnlm-en-50"];

    let mut noise_table = ResultsTable::new(
        "fig18_20_noise_sweep",
        &["dataset", "embedding", "noise", "one_nn_error", "ch_estimate", "lemma21_reference"],
    );
    let mut growth_table = ResultsTable::new(
        "fig18_20_sample_growth",
        &["dataset", "embedding", "train_samples", "one_nn_error", "ch_estimate"],
    );

    for spec in table1_specs() {
        if only != "all" && !only.split(',').any(|d| d == spec.name) {
            continue;
        }
        let clean = load_clean(spec.name, scale, 99);
        let clean_ber = clean.meta.true_ber.unwrap();
        let zoo = zoo_for_task(&clean, 99);
        let members: Vec<_> = zoo.iter().filter(|t| embeddings_of_interest.contains(&t.name())).collect();

        // (a) noise sweep with the full training set.
        for &rho in &[0.0f64, 0.2, 0.4, 0.6, 0.8] {
            let task = load_with_noise(spec.name, scale, &NoiseModel::Uniform(rho), 99);
            for t in &members {
                let train_e = t.transform(task.train.features.view());
                let test_e = t.transform(task.test.features.view());
                let err = BruteForceIndex::new(
                    &train_e,
                    &task.train.labels,
                    task.num_classes,
                    Metric::SquaredEuclidean,
                )
                .one_nn_error(&test_e, &task.test.labels);
                noise_table.push(vec![
                    spec.name.into(),
                    t.name().into(),
                    f4(rho),
                    f4(err),
                    f4(cover_hart_lower_bound(err, task.num_classes)),
                    f4(ber_after_uniform_noise(clean_ber, rho, task.num_classes)),
                ]);
            }
        }

        // (b) convergence with growing sample size, no label noise.
        for t in &members {
            let train_e = t.transform(clean.train.features.view());
            let test_e = t.transform(clean.test.features.view());
            let mut stream =
                IncrementalTopK::new(test_e, clean.test.labels.clone(), Metric::SquaredEuclidean, 1);
            let batch = (clean.train.len() / 8).max(1);
            let mut consumed = 0;
            while consumed < clean.train.len() {
                let end = (consumed + batch).min(clean.train.len());
                stream.append(train_e.view().slice_rows(consumed, end), &clean.train.labels[consumed..end]);
                consumed = end;
            }
            for &(n, err) in stream.curve() {
                growth_table.push(vec![
                    spec.name.into(),
                    t.name().into(),
                    n.to_string(),
                    f4(err),
                    f4(cover_hart_lower_bound(err, clean.num_classes)),
                ]);
            }
        }
    }
    noise_table.finish();
    growth_table.finish();
}
