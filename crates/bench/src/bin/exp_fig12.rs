//! Figure 12: comparing selection strategies (perfect, uniform allocation,
//! successive halving, successive halving with tangents) by the simulated
//! inference cost and wall-clock time needed to produce the estimate.

use snoopy_bandit::SelectionStrategy;
use snoopy_bench::{f4, scale_from_args, string_arg, ResultsTable};
use snoopy_core::{FeasibilityStudy, SnoopyConfig};
use snoopy_data::noise::NoiseModel;
use snoopy_data::registry::load_with_noise;
use snoopy_embeddings::{zoo_for_task, Transformation};

fn main() {
    let scale = scale_from_args();
    let datasets = string_arg("datasets", "cifar10,cifar100");
    let mut table = ResultsTable::new(
        "fig12_selection_strategies",
        &["dataset", "batch_fraction", "strategy", "ber_estimate", "simulated_seconds", "wall_clock_seconds"],
    );
    for name in datasets.split(',') {
        let task = load_with_noise(name, scale, &NoiseModel::Clean, 21);
        let zoo = zoo_for_task(&task, 21);
        for &batch_fraction in &[0.01f64, 0.02, 0.05] {
            // The "perfect" lower bound: run only the transformation that the
            // exhaustive study would pick.
            let exhaustive = FeasibilityStudy::new(
                SnoopyConfig::with_target(0.9)
                    .strategy(SelectionStrategy::Exhaustive)
                    .batch_fraction(batch_fraction),
            )
            .run(&task, &zoo);
            let best_only: Vec<Box<dyn Transformation>> = zoo_for_task(&task, 21)
                .into_iter()
                .filter(|t| t.name() == exhaustive.best_transformation)
                .collect();
            let perfect = FeasibilityStudy::new(
                SnoopyConfig::with_target(0.9)
                    .strategy(SelectionStrategy::Exhaustive)
                    .batch_fraction(batch_fraction),
            )
            .run(&task, &best_only);
            table.push(vec![
                name.into(),
                f4(batch_fraction),
                "perfect".into(),
                f4(perfect.ber_estimate),
                f4(perfect.simulated_cost_seconds),
                f4(perfect.wall_clock_seconds),
            ]);

            for strategy in [
                SelectionStrategy::Uniform,
                SelectionStrategy::SuccessiveHalving,
                SelectionStrategy::SuccessiveHalvingTangent,
                SelectionStrategy::Exhaustive,
            ] {
                let report = FeasibilityStudy::new(
                    SnoopyConfig::with_target(0.9).strategy(strategy).batch_fraction(batch_fraction),
                )
                .run(&task, &zoo);
                table.push(vec![
                    name.into(),
                    f4(batch_fraction),
                    strategy.name().into(),
                    f4(report.ber_estimate),
                    f4(report.simulated_cost_seconds),
                    f4(report.wall_clock_seconds),
                ]);
            }
        }
    }
    table.finish();
}
