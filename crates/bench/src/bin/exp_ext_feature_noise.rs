//! Extension experiment (beyond the paper's label-noise case study): the BER
//! estimate under *feature-side* data-quality issues — additive Gaussian
//! feature noise and missing features — demonstrating that the same
//! feasibility signal quantifies other data-quality dimensions, as Section
//! III-A anticipates.

use snoopy_bandit::SelectionStrategy;
use snoopy_bench::{f4, scale_from_args, ResultsTable};
use snoopy_core::{FeasibilityStudy, SnoopyConfig};
use snoopy_data::feature_noise::{apply_feature_noise, FeatureNoise};
use snoopy_data::registry::load_clean;
use snoopy_embeddings::zoo_for_task;

fn main() {
    let scale = scale_from_args();
    let mut table = ResultsTable::new(
        "ext_feature_noise",
        &["dataset", "corruption", "ber_estimate", "projected_accuracy", "decision_for_90pct_target"],
    );
    for name in ["cifar10", "imdb"] {
        let clean = load_clean(name, scale, 71);
        let corruptions: Vec<(String, Option<FeatureNoise>)> = vec![
            ("clean".into(), None),
            ("gaussian-0.5".into(), Some(FeatureNoise::Gaussian { relative_sigma: 0.5 })),
            ("gaussian-2.0".into(), Some(FeatureNoise::Gaussian { relative_sigma: 2.0 })),
            ("missing-0.3".into(), Some(FeatureNoise::MissingCompleteness { missing_rate: 0.3 })),
            ("missing-0.7".into(), Some(FeatureNoise::MissingCompleteness { missing_rate: 0.7 })),
        ];
        for (label, corruption) in corruptions {
            let mut task = clean.clone();
            if let Some(c) = &corruption {
                apply_feature_noise(&mut task, c, 72);
            }
            let zoo = zoo_for_task(&task, 71);
            let report = FeasibilityStudy::new(
                SnoopyConfig::with_target(0.90)
                    .strategy(SelectionStrategy::SuccessiveHalvingTangent)
                    .batch_fraction(0.1),
            )
            .run(&task, &zoo);
            table.push(vec![
                name.into(),
                label,
                f4(report.ber_estimate),
                f4(report.projected_accuracy),
                report.decision.name().into(),
            ]);
        }
    }
    table.finish();
}
