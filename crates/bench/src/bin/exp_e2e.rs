//! Figures 9, 10 and 21–27: the end-to-end label-cleaning use case under the
//! paper's cost scenarios (free / cheap / expensive labels).
//!
//! For each dataset × noise level × target accuracy, every user strategy
//! (FineTune with step 1/5/10/50 %, LR-proxy feasibility, Snoopy feasibility)
//! is simulated once; the resulting trace (labels inspected + machine
//! seconds) is then priced under all three cost scenarios, exactly as the
//! paper prices the same interaction under different label-cost regimes.

use snoopy_bench::{f4, scale_from_args, string_arg, ResultsTable};
use snoopy_data::noise::NoiseModel;
use snoopy_data::registry::load_with_noise;
use snoopy_e2e::{simulate, SimulationConfig, UserStrategy};
use snoopy_models::{CostScenario, LabelCost, MachineCost};

fn main() {
    let scale = scale_from_args();
    let datasets = string_arg("datasets", "cifar10,sst2,cifar100");
    let mut table = ResultsTable::new(
        "fig9_10_e2e_use_case",
        &[
            "dataset",
            "noise",
            "target_accuracy",
            "label_cost",
            "strategy",
            "total_dollars",
            "labels_inspected",
            "fraction_cleaned",
            "machine_hours",
            "expensive_runs",
            "final_accuracy",
            "reached_target",
        ],
    );

    let scenarios =
        [(LabelCost::Free, "free"), (LabelCost::Cheap, "cheap"), (LabelCost::Expensive, "expensive")];

    for name in datasets.split(',') {
        // Noise / target pairs mirroring Figure 9: 40% noise with a modest
        // target and 20% noise with an ambitious one.
        for &(rho, target) in &[(0.4f64, 0.60f64), (0.2, 0.80)] {
            let task = load_with_noise(name, scale, &NoiseModel::Uniform(rho), 9);
            let base_cost = CostScenario { label: LabelCost::Free, machine: MachineCost::default() };
            let config = SimulationConfig::new(target, base_cost, 9);
            for strategy in UserStrategy::paper_lineup() {
                let trace = simulate(&task, strategy, &config);
                for (label_cost, cost_name) in scenarios {
                    let scenario = CostScenario { label: label_cost, machine: MachineCost::default() };
                    let dollars = scenario.total_dollars(trace.labels_inspected, trace.machine_seconds);
                    table.push(vec![
                        name.into(),
                        f4(rho),
                        f4(target),
                        (*cost_name).into(),
                        trace.strategy.clone(),
                        format!("{dollars:.3}"),
                        trace.labels_inspected.to_string(),
                        f4(trace.labels_inspected as f64 / task.total_len() as f64),
                        format!("{:.2}", trace.machine_seconds / 3600.0),
                        trace.expensive_runs.to_string(),
                        f4(trace.final_accuracy),
                        trace.reached_target.to_string(),
                    ]);
                }
            }
        }
    }
    table.finish();
}
