//! Figures 14–17: the regime quantities of Section IV-B (transformation bias
//! δ_f, asymptotic tightness Δ_f and Δ_id, finite-sample gap γ_{f,n}) and the
//! Condition 8 margin, evaluated on a task with known Bayes error.

use snoopy_bench::{f4, scale_from_args, ResultsTable};
use snoopy_core::theory::{condition8_summary, regime_quantities};
use snoopy_data::noise::NoiseModel;
use snoopy_data::registry::load_with_noise;
use snoopy_embeddings::zoo_for_task;

fn main() {
    let scale = scale_from_args();
    let task = load_with_noise("cifar10", scale, &NoiseModel::Clean, 55);
    let zoo = zoo_for_task(&task, 55);
    let fractions = [0.25f64, 0.5, 1.0];

    let mut table = ResultsTable::new(
        "fig14_17_regime_quantities",
        &[
            "transformation",
            "true_ber",
            "transformed_ber",
            "delta_f",
            "estimator_limit",
            "tightness_Delta_f",
            "gamma_quarter",
            "gamma_half",
            "gamma_full",
            "condition8_margin_full",
        ],
    );
    for name in ["raw", "pca32", "nca", "random-proj32", "alexnet", "resnet50-v2", "efficientnet-b7"] {
        let Some(t) = zoo.iter().find(|t| t.name() == name) else { continue };
        let q = regime_quantities(&task, t.as_ref(), &fractions);
        let gammas: Vec<f64> = q.finite_sample_gaps.iter().map(|&(_, g)| g).collect();
        table.push(vec![
            q.name.clone(),
            f4(q.true_ber),
            f4(q.transformed_ber),
            f4(q.delta_f),
            f4(q.estimator_limit),
            f4(q.tightness),
            f4(gammas.first().copied().unwrap_or(0.0)),
            f4(gammas.get(1).copied().unwrap_or(0.0)),
            f4(gammas.get(2).copied().unwrap_or(0.0)),
            f4(q.condition8_margin(task.train.len()).unwrap_or(f64::NAN)),
        ]);
    }
    table.finish();

    let (holds, total) = condition8_summary(&task, &zoo, &fractions);
    println!("\nCondition 8 (no underestimation of the BER) holds for {holds} / {total} zoo members.");
}
