//! Figure 8: how accurate the Eq. 10 extrapolation is when fitted on a
//! fraction of the samples and extrapolated to the full dataset (CIFAR-100
//! analogue, low label noise).

use snoopy_bench::{f4, scale_from_args, ResultsTable};
use snoopy_data::noise::NoiseModel;
use snoopy_data::registry::load_with_noise;
use snoopy_embeddings::zoo_for_task;
use snoopy_estimators::{cover_hart_lower_bound, LogLinearFit};
use snoopy_knn::{IncrementalTopK, Metric};

fn main() {
    let scale = scale_from_args();
    let task = load_with_noise("cifar100", scale, &NoiseModel::Uniform(0.2), 13);
    let zoo = zoo_for_task(&task, 13);
    let embedding = zoo.iter().find(|t| t.name() == "efficientnet-b5").expect("zoo has efficientnet-b5");
    let train_e = embedding.transform(task.train.features.view());
    let test_e = embedding.transform(task.test.features.view());

    // Build a fine-grained convergence curve once (5% batches).
    let mut stream = IncrementalTopK::new(test_e, task.test.labels.clone(), Metric::SquaredEuclidean, 1);
    let batch = (task.train.len() / 20).max(1);
    let mut consumed = 0;
    while consumed < task.train.len() {
        let end = (consumed + batch).min(task.train.len());
        stream.append(&train_e.slice_rows(consumed, end), &task.train.labels[consumed..end]);
        consumed = end;
    }
    let full_curve = stream.curve().to_vec();
    let full_n = task.train.len();
    let actual_full_error = full_curve.last().unwrap().1;
    let actual_full_estimate = cover_hart_lower_bound(actual_full_error, task.num_classes);

    let mut table = ResultsTable::new(
        "fig8_extrapolation_accuracy",
        &[
            "fraction_used",
            "points_used",
            "predicted_error_at_full_n",
            "actual_error_at_full_n",
            "abs_gap_in_estimate",
        ],
    );
    for &fraction in &[0.05f64, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let cutoff = ((full_n as f64) * fraction).round() as usize;
        let prefix: Vec<(usize, f64)> =
            full_curve.iter().copied().filter(|&(n, _)| n <= cutoff.max(batch * 2)).collect();
        if prefix.len() < 2 {
            continue;
        }
        let fit = LogLinearFit::fit(&prefix);
        let predicted = fit.predict_error(full_n);
        let predicted_estimate = cover_hart_lower_bound(predicted, task.num_classes);
        table.push(vec![
            f4(fraction),
            prefix.len().to_string(),
            f4(predicted),
            f4(actual_full_error),
            f4((predicted_estimate - actual_full_estimate).abs()),
        ]);
    }
    table.finish();
}
