//! Figure 13: incremental re-execution after cleaning 1 % of the labels
//! versus re-running the 1NN evaluation from scratch, on all six datasets.
//! The incremental state is held at k = 3, so the same relabel refresh also
//! answers the k-prefix majority-vote error — both are asserted equal to a
//! cold rebuild before anything is timed.

use snoopy_bench::{scale_from_args, ResultsTable};
use snoopy_data::cleaning::clean_fraction;
use snoopy_data::noise::NoiseModel;
use snoopy_data::registry::{load_with_noise, table1_specs};
use snoopy_embeddings::zoo_for_task;
use snoopy_knn::{BruteForceIndex, IncrementalTopK, Metric};
use snoopy_linalg::rng;
use std::time::Instant;

/// Neighbours retained per test point: enough for the k = 3 vote refresh on
/// top of the 1NN signal, from one and the same state.
const TABLE_K: usize = 3;

fn main() {
    let scale = scale_from_args();
    let mut table = ResultsTable::new(
        "fig13_incremental_execution",
        &["dataset", "train", "test", "from_scratch_ms", "incremental_ms", "speedup"],
    );
    for spec in table1_specs() {
        let mut task = load_with_noise(spec.name, scale, &NoiseModel::Uniform(0.2), 33);
        let zoo = zoo_for_task(&task, 33);
        let best = zoo.iter().max_by(|a, b| a.cost_per_sample().total_cmp(&b.cost_per_sample())).unwrap();
        let train_e = best.transform(task.train.features.view());
        let test_e = best.transform(task.test.features.view());

        let mut cache = IncrementalTopK::build(
            &train_e,
            &task.train.labels,
            &test_e,
            &task.test.labels,
            Metric::SquaredEuclidean,
            TABLE_K,
        );

        // Clean 1% of the labels, then time both re-evaluation paths.
        let mut r = rng::seeded(34);
        clean_fraction(&mut task, 0.01, &mut r);

        let start = Instant::now();
        let scratch_index =
            BruteForceIndex::new(&train_e, &task.train.labels, task.num_classes, Metric::SquaredEuclidean);
        let scratch_error = scratch_index.one_nn_error(&test_e, &task.test.labels);
        let scratch_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let incremental_error = cache.set_labels(&task.train.labels, &task.test.labels);
        let incremental_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!((scratch_error - incremental_error).abs() < 1e-12, "incremental must equal full recompute");
        // The k > 1 refresh from the very same state must equal a cold
        // rebuild's majority-vote error too.
        let scratch_k = scratch_index.knn_error(&test_e, &task.test.labels, TABLE_K);
        let incremental_k = cache.knn_error(TABLE_K, task.num_classes);
        assert!(
            (scratch_k - incremental_k).abs() < 1e-12,
            "incremental k={TABLE_K} vote must equal full recompute ({incremental_k} vs {scratch_k})"
        );

        table.push(vec![
            spec.name.into(),
            task.train.len().to_string(),
            task.test.len().to_string(),
            format!("{scratch_ms:.3}"),
            format!("{incremental_ms:.4}"),
            format!("{:.0}x", scratch_ms / incremental_ms.max(1e-6)),
        ]);
    }
    table.finish();
}
