//! Figure 13: incremental re-execution after cleaning 1 % of the labels
//! versus re-running the 1NN evaluation from scratch, on all six datasets.

use snoopy_bench::{scale_from_args, ResultsTable};
use snoopy_data::cleaning::clean_fraction;
use snoopy_data::noise::NoiseModel;
use snoopy_data::registry::{load_with_noise, table1_specs};
use snoopy_embeddings::zoo_for_task;
use snoopy_knn::{BruteForceIndex, IncrementalOneNn, Metric};
use snoopy_linalg::rng;
use std::time::Instant;

fn main() {
    let scale = scale_from_args();
    let mut table = ResultsTable::new(
        "fig13_incremental_execution",
        &["dataset", "train", "test", "from_scratch_ms", "incremental_ms", "speedup"],
    );
    for spec in table1_specs() {
        let mut task = load_with_noise(spec.name, scale, &NoiseModel::Uniform(0.2), 33);
        let zoo = zoo_for_task(&task, 33);
        let best = zoo.iter().max_by(|a, b| a.cost_per_sample().total_cmp(&b.cost_per_sample())).unwrap();
        let train_e = best.transform(task.train.features.view());
        let test_e = best.transform(task.test.features.view());

        let mut cache = IncrementalOneNn::build(
            &train_e,
            &task.train.labels,
            &test_e,
            &task.test.labels,
            task.num_classes,
            Metric::SquaredEuclidean,
        );

        // Clean 1% of the labels, then time both re-evaluation paths.
        let mut r = rng::seeded(34);
        clean_fraction(&mut task, 0.01, &mut r);

        let start = Instant::now();
        let scratch_error =
            BruteForceIndex::new(&train_e, &task.train.labels, task.num_classes, Metric::SquaredEuclidean)
                .one_nn_error(&test_e, &task.test.labels);
        let scratch_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let incremental_error = cache.set_labels(&task.train.labels, &task.test.labels);
        let incremental_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!((scratch_error - incremental_error).abs() < 1e-12, "incremental must equal full recompute");

        table.push(vec![
            spec.name.into(),
            task.train.len().to_string(),
            task.test.len().to_string(),
            format!("{scratch_ms:.3}"),
            format!("{incremental_ms:.4}"),
            format!("{:.0}x", scratch_ms / incremental_ms.max(1e-6)),
        ]);
    }
    table.finish();
}
