//! Figure 6: the impact of fixing a single feature transformation instead of
//! taking the minimum over the zoo (IMDB and SST-2 analogues).

use snoopy_bandit::SelectionStrategy;
use snoopy_bench::{f4, scale_from_args, ResultsTable};
use snoopy_core::{FeasibilityStudy, SnoopyConfig};
use snoopy_data::noise::NoiseModel;
use snoopy_data::registry::load_with_noise;
use snoopy_embeddings::zoo_for_task;

fn main() {
    let scale = scale_from_args();
    let mut table = ResultsTable::new(
        "fig6_single_transformation_impact",
        &["dataset", "transformation", "ber_estimate", "gap_to_minimum", "gap_to_sota"],
    );
    for name in ["imdb", "sst2"] {
        let task = load_with_noise(name, scale, &NoiseModel::Clean, 42);
        let zoo = zoo_for_task(&task, 42);
        let report = FeasibilityStudy::new(
            SnoopyConfig::with_target(1.0 - task.meta.sota_error)
                .strategy(SelectionStrategy::Exhaustive)
                .batch_fraction(0.2),
        )
        .run(&task, &zoo);
        let minimum = report.ber_estimate;
        let mut rows: Vec<_> = report.per_transformation.iter().collect();
        rows.sort_by(|a, b| a.ber_estimate.total_cmp(&b.ber_estimate));
        for r in rows {
            table.push(vec![
                name.into(),
                r.name.clone(),
                f4(r.ber_estimate),
                f4(r.ber_estimate - minimum),
                f4(r.ber_estimate - task.meta.sota_error),
            ]);
        }
    }
    table.finish();
}
