//! Tables III and IV: the vision and NLP transformation registries with
//! nominal widths, simulated widths, and the inference cost model.

use snoopy_bench::ResultsTable;
use snoopy_embeddings::registry::{nlp_entries, simulated_dim, vision_entries};

fn main() {
    for (name, entries) in [("table3_vision_zoo", vision_entries()), ("table4_nlp_zoo", nlp_entries())] {
        let mut table = ResultsTable::new(
            name,
            &["embedding", "source", "nominal_dim", "simulated_dim", "cost_ms_per_sample", "base_fidelity"],
        );
        for e in entries {
            table.push(vec![
                e.name.to_string(),
                e.source.to_string(),
                e.nominal_dim.to_string(),
                simulated_dim(e.nominal_dim).to_string(),
                format!("{:.2}", e.cost_per_sample * 1e3),
                format!("{:.2}", e.fidelity),
            ]);
        }
        table.finish();
    }
}
