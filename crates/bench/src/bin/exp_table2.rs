//! Table II: statistics of the CIFAR-N transition-matrix replicas.

use snoopy_bench::{f4, ResultsTable};
use snoopy_data::noise::cifar_n_variants;

fn main() {
    let mut table = ResultsTable::new(
        "table2_cifar_n",
        &[
            "variant",
            "classes",
            "reported_noise",
            "generated_noise",
            "max_flip",
            "min_flip",
            "max_offdiag",
            "diag_dominant",
        ],
    );
    for v in cifar_n_variants() {
        table.push(vec![
            v.name.clone(),
            v.matrix.num_classes().to_string(),
            f4(v.reported_noise),
            f4(v.matrix.overall_noise(None)),
            f4(v.matrix.max_flip()),
            f4(v.matrix.min_flip()),
            f4(v.matrix.max_offdiag()),
            v.matrix.diagonal_dominant().to_string(),
        ]);
    }
    table.finish();
}
