//! FeeBee-style ablation (Section II-A): how well does each Bayes-error
//! estimator family track the known BER evolution under uniform label noise,
//! both in the low-dimensional latent space and on high-dimensional "raw"
//! features where density estimation struggles — across growing
//! training-set rounds?
//!
//! One [`IncrementalTopK`] state per (representation, split) carries the
//! neighbour computation across *everything*: each sample-size round
//! **appends** only the new training rows (`O(new × test)` kernel work, no
//! rebuild), and within a round every label-noise level re-reads the same
//! state snapshot — neighbours depend only on features.

use snoopy_bench::{f4, ResultsTable};
use snoopy_data::gaussian::{GaussianMixture, GaussianMixtureSpec};
use snoopy_data::noise::{ber_after_uniform_noise, TransitionMatrix};
use snoopy_estimators::{
    default_estimators, estimate_all_with_state, shared_table_k, IncrementalTopK, LabeledView, Metric,
};
use snoopy_linalg::projection::random_orthonormal_map;
use snoopy_linalg::{rng, Matrix};

fn main() {
    let num_classes = 5;
    let mixture = GaussianMixture::from_spec(&GaussianMixtureSpec {
        num_classes,
        latent_dim: 12,
        class_sep: 2.2,
        within_std: 1.0,
        seed: 17,
    });
    let mut sample_rng = rng::seeded(18);
    let (train_lat, train_y) = mixture.sample(3_000, &mut sample_rng);
    let (test_lat, test_y) = mixture.sample(800, &mut sample_rng);
    let clean_ber = mixture.bayes_error_monte_carlo(50_000, 19);

    // High-dimensional "raw" variant: embed the latent points into 200
    // dimensions and add observation noise (the regime in which the paper —
    // and FeeBee — find density/divergence estimators fall behind 1NN).
    let mixing = random_orthonormal_map(200, 12, 21);
    let lift = |latent: &Matrix, seed: u64| {
        let mut r = rng::seeded(seed);
        let mut raw = latent.matmul(&mixing.transpose());
        for v in raw.data_mut() {
            *v += (rng::normal(&mut r) * 0.6) as f32;
        }
        raw
    };
    let train_raw = lift(&train_lat, 22);
    let test_raw = lift(&test_lat, 23);

    let estimators = default_estimators();
    let mut table = ResultsTable::new(
        "estimator_ablation_feebee",
        &["representation", "train_n", "noise", "true_noisy_ber", "estimator", "estimate", "absolute_error"],
    );
    let round_fractions = [0.25f64, 0.5, 1.0];
    let noise_levels = [0.0f64, 0.2, 0.4, 0.6, 0.8];
    let mut noise_rng = rng::seeded(20);

    let k_max = shared_table_k(&estimators);

    for (repr, train_x, test_x) in
        [("latent-d12", &train_lat, &test_lat), ("raw-d200", &train_raw, &test_raw)]
    {
        // One growing state per (representation, split): each round appends
        // the training rows beyond the previous round's prefix, and every
        // noise level of every round reads the same snapshot.
        let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, k_max);
        let mut consumed = 0usize;
        let mut mae = vec![0.0f64; estimators.len()];
        for &fraction in &round_fractions {
            let n = ((train_x.rows() as f64) * fraction).round() as usize;
            state.append(train_x.view().slice_rows(consumed, n), &train_y[consumed..n]);
            consumed = n;
            for &rho in &noise_levels {
                let t = TransitionMatrix::uniform(num_classes, rho);
                let noisy_train = t.apply(&train_y, &mut noise_rng);
                let noisy_test = t.apply(&test_y, &mut noise_rng);
                let truth = ber_after_uniform_noise(clean_ber, rho, num_classes);
                let values = estimate_all_with_state(
                    &estimators,
                    &state,
                    &LabeledView::new(train_x, &noisy_train).prefix(n),
                    &LabeledView::new(test_x, &noisy_test),
                    num_classes,
                );
                for (i, (est, value)) in estimators.iter().zip(&values).enumerate() {
                    if n == train_x.rows() {
                        mae[i] += (value - truth).abs() / noise_levels.len() as f64;
                    }
                    table.push(vec![
                        repr.into(),
                        n.to_string(),
                        f4(rho),
                        f4(truth),
                        est.name().into(),
                        f4(*value),
                        f4((value - truth).abs()),
                    ]);
                }
            }
        }
        println!("\n[{repr}] mean absolute error across noise levels (full training set):");
        for (est, err) in estimators.iter().zip(&mae) {
            println!("  {:<16} {:.4}", est.name(), err);
        }
    }
    table.finish();
}
