//! FeeBee-style ablation (Section II-A): how well does each Bayes-error
//! estimator family track the known BER evolution under uniform label noise,
//! both in the low-dimensional latent space and on high-dimensional "raw"
//! features where density estimation struggles?

use snoopy_bench::{f4, ResultsTable};
use snoopy_data::gaussian::{GaussianMixture, GaussianMixtureSpec};
use snoopy_data::noise::{ber_after_uniform_noise, TransitionMatrix};
use snoopy_estimators::{
    default_estimators, estimate_all_with_table, shared_neighbor_table, shared_table_k, LabeledView,
};
use snoopy_linalg::projection::random_orthonormal_map;
use snoopy_linalg::{rng, Matrix};

fn main() {
    let num_classes = 5;
    let mixture = GaussianMixture::from_spec(&GaussianMixtureSpec {
        num_classes,
        latent_dim: 12,
        class_sep: 2.2,
        within_std: 1.0,
        seed: 17,
    });
    let mut sample_rng = rng::seeded(18);
    let (train_lat, train_y) = mixture.sample(3_000, &mut sample_rng);
    let (test_lat, test_y) = mixture.sample(800, &mut sample_rng);
    let clean_ber = mixture.bayes_error_monte_carlo(50_000, 19);

    // High-dimensional "raw" variant: embed the latent points into 200
    // dimensions and add observation noise (the regime in which the paper —
    // and FeeBee — find density/divergence estimators fall behind 1NN).
    let mixing = random_orthonormal_map(200, 12, 21);
    let lift = |latent: &Matrix, seed: u64| {
        let mut r = rng::seeded(seed);
        let mut raw = latent.matmul(&mixing.transpose());
        for v in raw.data_mut() {
            *v += (rng::normal(&mut r) * 0.6) as f32;
        }
        raw
    };
    let train_raw = lift(&train_lat, 22);
    let test_raw = lift(&test_lat, 23);

    let estimators = default_estimators();
    let mut table = ResultsTable::new(
        "estimator_ablation_feebee",
        &["representation", "noise", "true_noisy_ber", "estimator", "estimate", "absolute_error"],
    );
    let noise_levels = [0.0f64, 0.2, 0.4, 0.6, 0.8];
    let mut noise_rng = rng::seeded(20);

    let k_max = shared_table_k(&estimators);

    for (repr, train_x, test_x) in
        [("latent-d12", &train_lat, &test_lat), ("raw-d200", &train_raw, &test_raw)]
    {
        // Neighbours depend only on features, so one top-k_max table per
        // (transformation, split) serves every noise level and every
        // kNN-family estimator (each consumes a prefix of it).
        let neighbors = shared_neighbor_table(train_x.view(), test_x.view(), k_max);
        let mut mae = vec![0.0f64; estimators.len()];
        for &rho in &noise_levels {
            let t = TransitionMatrix::uniform(num_classes, rho);
            let noisy_train = t.apply(&train_y, &mut noise_rng);
            let noisy_test = t.apply(&test_y, &mut noise_rng);
            let truth = ber_after_uniform_noise(clean_ber, rho, num_classes);
            let values = estimate_all_with_table(
                &estimators,
                &neighbors,
                &LabeledView::new(train_x, &noisy_train),
                &LabeledView::new(test_x, &noisy_test),
                num_classes,
            );
            for (i, (est, value)) in estimators.iter().zip(&values).enumerate() {
                mae[i] += (value - truth).abs() / noise_levels.len() as f64;
                table.push(vec![
                    repr.into(),
                    f4(rho),
                    f4(truth),
                    est.name().into(),
                    f4(*value),
                    f4((value - truth).abs()),
                ]);
            }
        }
        println!("\n[{repr}] mean absolute error across noise levels:");
        for (est, err) in estimators.iter().zip(&mae) {
            println!("  {:<16} {:.4}", est.name(), err);
        }
    }
    table.finish();
}
