//! Figure 2: theoretical justification — 1NN error and its Cover–Hart
//! estimate under increasing uniform label noise, for raw features and the
//! best transformation, versus a downscaled logistic-regression proxy.

use snoopy_bench::{f4, scale_from_args, ResultsTable};
use snoopy_data::noise::{ber_after_uniform_noise, NoiseModel};
use snoopy_data::registry::{apply_noise, load_clean};
use snoopy_embeddings::zoo_for_task;
use snoopy_estimators::cover_hart_lower_bound;
use snoopy_knn::{BruteForceIndex, Metric};
use snoopy_models::logreg::grid_search_error;

fn main() {
    let scale = scale_from_args();
    let base = load_clean("cifar10", scale, 2);
    let clean_ber = base.meta.true_ber.unwrap();
    let zoo = zoo_for_task(&base, 2);
    let best = zoo.iter().find(|t| t.name() == "efficientnet-b7").expect("zoo contains efficientnet-b7");

    // Embeddings never change with label noise: compute them once.
    let train_raw = &base.train.features;
    let test_raw = &base.test.features;
    let train_best = best.transform(train_raw.view());
    let test_best = best.transform(test_raw.view());

    let mut table = ResultsTable::new(
        "fig2_downscaling_justification",
        &[
            "noise",
            "true_ber_lemma21",
            "raw_1nn_error",
            "raw_ch_estimate",
            "best_1nn_error",
            "best_ch_estimate",
            "lr_error",
            "lr_scaled_08",
            "lr_ch_normalized",
        ],
    );
    for step in 0..=10 {
        let rho = step as f64 / 10.0;
        let mut task = base.clone();
        apply_noise(&mut task, &NoiseModel::Uniform(rho), 77 + step as u64);

        let raw_err =
            BruteForceIndex::new(train_raw, &task.train.labels, task.num_classes, Metric::SquaredEuclidean)
                .one_nn_error(test_raw, &task.test.labels);
        let best_err =
            BruteForceIndex::new(&train_best, &task.train.labels, task.num_classes, Metric::SquaredEuclidean)
                .one_nn_error(&test_best, &task.test.labels);
        let (lr_err, _) = grid_search_error(
            &train_best,
            &task.train.labels,
            &test_best,
            &task.test.labels,
            task.num_classes,
            10,
            5,
        );
        table.push(vec![
            f4(rho),
            f4(ber_after_uniform_noise(clean_ber, rho, task.num_classes)),
            f4(raw_err),
            f4(cover_hart_lower_bound(raw_err, task.num_classes)),
            f4(best_err),
            f4(cover_hart_lower_bound(best_err, task.num_classes)),
            f4(lr_err),
            f4(lr_err * 0.8),
            f4(cover_hart_lower_bound(lr_err, task.num_classes)),
        ]);
    }
    table.finish();
}
