//! Figure 4: error estimations versus (simulated) time for three synthetic
//! uniform-noise levels (0 %, 20 %, 40 %) across all six datasets, comparing
//! Snoopy against the LR proxy, AutoML, and FineTune baselines. The dashed
//! reference of the paper (expected increase of the SOTA under Lemma 2.1) is
//! included as its own column.

use snoopy_bandit::SelectionStrategy;
use snoopy_bench::{f1, f4, scale_from_args, string_arg, ResultsTable};
use snoopy_core::{FeasibilityStudy, SnoopyConfig};
use snoopy_data::noise::{ber_after_uniform_noise, NoiseModel};
use snoopy_data::registry::{load_with_noise, table1_specs};
use snoopy_embeddings::zoo_for_task;
use snoopy_models::logreg::{grid_search_error, LOGREG_GRID_SIZE};
use snoopy_models::{AutoMlConfig, AutoMlSearch, FineTuneBaseline};

fn main() {
    let scale = scale_from_args();
    let only = string_arg("datasets", "all");
    let mut table = ResultsTable::new(
        "fig4_estimations_vs_time_synthetic_noise",
        &["dataset", "noise", "method", "error_estimate", "simulated_seconds", "expected_noisy_sota"],
    );

    for spec in table1_specs() {
        if only != "all" && !only.split(',').any(|d| d == spec.name) {
            continue;
        }
        for &rho in &[0.0f64, 0.2, 0.4] {
            let task = load_with_noise(spec.name, scale, &NoiseModel::Uniform(rho), 100);
            let expected = ber_after_uniform_noise(spec.sota_error, rho, spec.num_classes);
            let zoo = zoo_for_task(&task, 100);

            // Snoopy (successive halving with tangents).
            let report = FeasibilityStudy::new(
                SnoopyConfig::with_target(1.0 - expected)
                    .strategy(SelectionStrategy::SuccessiveHalvingTangent)
                    .batch_fraction(0.1),
            )
            .run(&task, &zoo);
            table.push(vec![
                spec.name.into(),
                f4(rho),
                "snoopy".into(),
                f4(report.ber_estimate),
                f1(report.simulated_cost_seconds),
                f4(expected),
            ]);

            // LR proxy on the best (most expensive) embedding.
            let best = &zoo[zoo
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cost_per_sample().total_cmp(&b.1.cost_per_sample()))
                .map(|(i, _)| i)
                .unwrap()];
            let train_e = best.transform(task.train.features.view());
            let test_e = best.transform(task.test.features.view());
            let (lr_err, _) = grid_search_error(
                &train_e,
                &task.train.labels,
                &test_e,
                &task.test.labels,
                task.num_classes,
                10,
                3,
            );
            let lr_cost =
                best.cost_for(task.total_len()) + 0.004 * task.train.len() as f64 * LOGREG_GRID_SIZE as f64;
            table.push(vec![
                spec.name.into(),
                f4(rho),
                "lr-proxy".into(),
                f4(lr_err),
                f1(lr_cost),
                f4(expected),
            ]);

            // AutoML (short budget).
            let automl = AutoMlSearch::new(AutoMlConfig { epochs: 8, ..AutoMlConfig::short(7) }).run(
                &task.train.features,
                &task.train.labels,
                &task.test.features,
                &task.test.labels,
                task.num_classes,
            );
            table.push(vec![
                spec.name.into(),
                f4(rho),
                "automl-short".into(),
                f4(automl.best_error),
                f1(automl.simulated_seconds),
                f4(expected),
            ]);

            // FineTune.
            let finetune = FineTuneBaseline::quick(9).run(&task);
            table.push(vec![
                spec.name.into(),
                f4(rho),
                "finetune".into(),
                f4(finetune.test_error),
                f1(finetune.simulated_seconds),
                f4(expected),
            ]);
        }
    }
    table.finish();
}
