//! Figure 7: convergence plot for a fixed embedding on CIFAR-100 replicas
//! with 20 % / 40 % uniform noise, two target accuracies each, plus the
//! Eq. 10 extrapolation of additional samples needed.

use snoopy_bench::{f4, scale_from_args, ResultsTable};
use snoopy_data::noise::NoiseModel;
use snoopy_data::registry::load_with_noise;
use snoopy_embeddings::zoo_for_task;
use snoopy_estimators::{cover_hart_lower_bound, LogLinearFit};
use snoopy_knn::{IncrementalTopK, Metric};

fn main() {
    let scale = scale_from_args();
    let mut curve_table = ResultsTable::new(
        "fig7_convergence_cifar100",
        &["noise", "train_samples", "one_nn_error", "ch_estimate"],
    );
    let mut target_table = ResultsTable::new(
        "fig7_targets_cifar100",
        &["noise", "target_accuracy", "reachable_now", "additional_samples_estimate", "trustworthy"],
    );

    for &rho in &[0.2f64, 0.4] {
        let task = load_with_noise("cifar100", scale, &NoiseModel::Uniform(rho), 7);
        let zoo = zoo_for_task(&task, 7);
        let embedding = zoo.iter().find(|t| t.name() == "efficientnet-b5").expect("zoo has efficientnet-b5");
        let train_e = embedding.transform(task.train.features.view());
        let test_e = embedding.transform(task.test.features.view());

        let mut stream = IncrementalTopK::new(test_e, task.test.labels.clone(), Metric::SquaredEuclidean, 1);
        let batch = (task.train.len() / 10).max(1);
        let mut consumed = 0;
        while consumed < task.train.len() {
            let end = (consumed + batch).min(task.train.len());
            stream.append(&train_e.slice_rows(consumed, end), &task.train.labels[consumed..end]);
            consumed = end;
        }
        for &(n, err) in stream.curve() {
            curve_table.push(vec![
                f4(rho),
                n.to_string(),
                f4(err),
                f4(cover_hart_lower_bound(err, task.num_classes)),
            ]);
        }

        let fit = LogLinearFit::fit(stream.curve());
        let current_estimate = cover_hart_lower_bound(stream.error(), task.num_classes);
        // Targets, as in the paper's Fig. 7 discussion: a modest extension of
        // what the data already supports (trustworthy small extrapolation)
        // versus the optimistic "error equal to the noise level" target that
        // requires an extrapolation far beyond the observed range.
        for target_error in [current_estimate * 0.9, rho + 0.10, rho] {
            let target_accuracy = 1.0 - target_error;
            let reachable_now = cover_hart_lower_bound(stream.error(), task.num_classes) <= target_error;
            let extra = fit.additional_samples_to_reach(target_error);
            let trustworthy = extra.map(|e| fit.reliable(task.train.len() + e, 10.0)).unwrap_or(false);
            target_table.push(vec![
                f4(rho),
                f4(target_accuracy),
                reachable_now.to_string(),
                extra.map(|e| e.to_string()).unwrap_or_else(|| "unreachable".into()),
                trustworthy.to_string(),
            ]);
        }
    }
    curve_table.finish();
    target_table.finish();
}
