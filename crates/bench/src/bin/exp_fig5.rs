//! Figure 5: error estimations versus time on the CIFAR-N (real human noise)
//! replicas, together with the Theorem 3.1 bounds and the Eq. 20
//! approximation.

use snoopy_bandit::SelectionStrategy;
use snoopy_bench::{f1, f4, scale_from_args, ResultsTable};
use snoopy_core::{FeasibilityStudy, SnoopyConfig};
use snoopy_data::noise::{ber_approx_class_dependent, ber_bounds_class_dependent, cifar_n_variants};
use snoopy_data::registry::load_cifar_n;
use snoopy_embeddings::zoo_for_task;
use snoopy_models::logreg::{grid_search_error, LOGREG_GRID_SIZE};
use snoopy_models::FineTuneBaseline;

fn main() {
    let scale = scale_from_args();
    let mut table = ResultsTable::new(
        "fig5_estimations_vs_time_cifar_n",
        &[
            "variant",
            "method",
            "error_estimate",
            "simulated_seconds",
            "thm31_lower",
            "thm31_upper",
            "eq20_approx",
        ],
    );
    for variant in cifar_n_variants() {
        let task = load_cifar_n(&variant.name, scale, 500);
        let (lo, hi) = ber_bounds_class_dependent(task.meta.sota_error, &variant.matrix);
        let approx = ber_approx_class_dependent(task.meta.sota_error, &variant.matrix, None);
        let zoo = zoo_for_task(&task, 500);

        let report = FeasibilityStudy::new(
            SnoopyConfig::with_target(1.0 - approx)
                .strategy(SelectionStrategy::SuccessiveHalvingTangent)
                .batch_fraction(0.1),
        )
        .run(&task, &zoo);
        table.push(vec![
            variant.name.clone(),
            "snoopy".into(),
            f4(report.ber_estimate),
            f1(report.simulated_cost_seconds),
            f4(lo),
            f4(hi),
            f4(approx),
        ]);

        let best = zoo.iter().max_by(|a, b| a.cost_per_sample().total_cmp(&b.cost_per_sample())).unwrap();
        let train_e = best.transform(task.train.features.view());
        let test_e = best.transform(task.test.features.view());
        let (lr_err, _) = grid_search_error(
            &train_e,
            &task.train.labels,
            &test_e,
            &task.test.labels,
            task.num_classes,
            10,
            3,
        );
        let lr_cost =
            best.cost_for(task.total_len()) + 0.004 * task.train.len() as f64 * LOGREG_GRID_SIZE as f64;
        table.push(vec![
            variant.name.clone(),
            "lr-proxy".into(),
            f4(lr_err),
            f1(lr_cost),
            f4(lo),
            f4(hi),
            f4(approx),
        ]);

        let finetune = FineTuneBaseline::quick(11).run(&task);
        table.push(vec![
            variant.name.clone(),
            "finetune".into(),
            f4(finetune.test_error),
            f1(finetune.simulated_seconds),
            f4(lo),
            f4(hi),
            f4(approx),
        ]);
    }
    table.finish();
}
