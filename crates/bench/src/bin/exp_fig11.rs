//! Figure 11: generalisation to small tasks (VTAB-like suite) — the
//! difference between Snoopy's projected accuracy and the best fine-tuned
//! accuracy on 19 tasks with 1 000 training samples each.

use snoopy_bandit::SelectionStrategy;
use snoopy_bench::{f4, ResultsTable};
use snoopy_core::{FeasibilityStudy, SnoopyConfig};
use snoopy_data::registry::vtab_suite;
use snoopy_embeddings::zoo_for_task;
use snoopy_models::FineTuneBaseline;

fn main() {
    let mut table = ResultsTable::new(
        "fig11_vtab_generalisation",
        &["task", "classes", "true_ber", "snoopy_projected_accuracy", "finetune_accuracy", "difference"],
    );
    let mut differences = Vec::new();
    for task in vtab_suite(2024) {
        let zoo = zoo_for_task(&task, 2024);
        let report = FeasibilityStudy::new(
            SnoopyConfig::with_target(0.9)
                .strategy(SelectionStrategy::SuccessiveHalvingTangent)
                .batch_fraction(0.2),
        )
        .run(&task, &zoo);
        let finetune = FineTuneBaseline::quick(7).run(&task);
        let diff = report.projected_accuracy - finetune.test_accuracy;
        differences.push(diff);
        table.push(vec![
            task.name.clone(),
            task.num_classes.to_string(),
            f4(task.meta.true_ber.unwrap_or(f64::NAN)),
            f4(report.projected_accuracy),
            f4(finetune.test_accuracy),
            f4(diff),
        ]);
    }
    table.finish();

    let mean = differences.iter().sum::<f64>() / differences.len() as f64;
    let within_10 = differences.iter().filter(|d| d.abs() <= 0.10).count();
    println!(
        "\nsummary: mean(projected - finetune) = {mean:.4}; {} / {} tasks within 0.10",
        within_10,
        differences.len()
    );
}
