//! Table I: dataset statistics and SOTA errors, plus the calibrated Bayes
//! error of each generated replica.

use snoopy_bench::{f4, scale_from_args, ResultsTable};
use snoopy_data::registry::table1_specs;

fn main() {
    let scale = scale_from_args();
    let mut table = ResultsTable::new(
        "table1_datasets",
        &[
            "dataset",
            "modality",
            "classes",
            "paper_train",
            "paper_test",
            "replica_train",
            "replica_test",
            "sota_error",
            "replica_true_ber",
        ],
    );
    for spec in table1_specs() {
        let (train, test) = spec.sizes(scale);
        let task = spec.generate(scale, 1234);
        table.push(vec![
            spec.name.to_string(),
            spec.modality.name().to_string(),
            spec.num_classes.to_string(),
            spec.paper_train.to_string(),
            spec.paper_test.to_string(),
            train.to_string(),
            test.to_string(),
            f4(spec.sota_error),
            f4(task.meta.true_ber.unwrap_or(f64::NAN)),
        ]);
    }
    table.finish();
}
