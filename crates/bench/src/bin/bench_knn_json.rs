//! Emits `BENCH_knn.json`: queries/second of the kNN kernels — 1NN serial vs
//! chunk-parallel, top-k (k = 1 vs k = 10) parallel vs the serial reference,
//! the leave-one-out error (parallel self-excluding kernel vs a
//! forced-serial engine), the single-core scalar-vs-tiled kernel comparison
//! (the PR-3 per-pair scalar scan against the tile-blocked `MetricKernel`
//! path, per metric, across an n × d grid), the exhaustive-vs-clustered
//! backend comparison (wall-clock, pruning rates, index build time) on a
//! clustered synthetic workload, the plain-vs-quantized clustered scan
//! (int8 two-phase scan against the exact f32 scan on the same partition,
//! plus resident-bytes accounting for the scan copy), the incremental
//! successor-state comparison (per-round append fold vs full table rebuild,
//! plus the relabel refresh latency), the sliding-window eviction comparison
//! (per-slide append+evict on an eviction-enabled state vs a cold rebuild of
//! the surviving window, with the re-scanned query count per slide), the
//! re-partition policy sweep
//! (growth factors 1.5/2/3 and the prune-rate trigger replaying one
//! *drifting* append stream whose batch means walk round over round), the
//! persistent-pool comparison (per-call latency of the old scoped-spawn
//! fan-out vs the pool-backed engine, plus the zero-alloc scratch variant),
//! the multi-tenant serving comparison (studies/sec of the warm
//! `FeasibilityService` at 1..N tenants vs sequential cold one-shot
//! studies), and the out-of-core comparison (the full feasibility study
//! over a disk dataset `budget_factor`× the resident shard budget, paged
//! through the `ShardedIndex`, vs the fully-resident baseline — with
//! bit-identical tables/estimates, ≥ 2 forced shard evictions, and the
//! peak-residency contract asserted before timing — plus a query-phase
//! comparison of serial paging vs the depth-4 prefetch pipeline on a
//! prebuilt index, bit-identical by assertion and ≥ 1.2× faster at
//! eviction-heavy cases when ≥ 2 pool workers have ≥ 2 cores to run on)
//! — across a few training-set sizes. This is the workspace's
//! perf-trajectory anchor — run it before and after touching the engine.
//!
//! Every section asserts bit-exact parity before timing anything, the
//! clustered section additionally asserts a non-zero pruning rate, the
//! quantized section asserts a ≥ 2× speedup over the plain clustered scan
//! at n ≥ 10 000 plus the exact 4× code-vs-f32 byte ratio, and the
//! incremental section asserts a ≥ 2× round-over-round speedup of the
//! append fold over the rebuild at n ≥ 10 000, and the eviction section
//! asserts a ≥ 2× per-slide speedup of append+evict over the cold window
//! rebuild at n ≥ 10 000 — so a silent regression of any fast path fails
//! the run (CI executes the tiny scale, which includes the 10k incremental
//! and eviction cases).
//!
//! ```text
//! cargo run --release -p snoopy-bench --bin bench_knn_json [--scale tiny|small|standard]
//! ```

use snoopy_knn::engine::{knn_reference, nearest_reference, EvalEngine, NeighborTable, TopKState};
use snoopy_knn::{
    BruteForceIndex, ClusteredIndex, EvalBackend, IncrementalTopK, Metric, MetricKernel, RepartitionPolicy,
};
use snoopy_linalg::{rng, DatasetView, LabeledView, Matrix};
use std::fmt::Write as _;
use std::time::Instant;

fn make_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut r = rng::seeded(seed);
    Matrix::from_fn(n, d, |_, _| rng::normal(&mut r) as f32)
}

/// Clustered synthetic features (the shared fixture builder): `n` rows drawn
/// round-robin from `centers` well-separated Gaussian blobs — the workload
/// shape the clustered backend is built for.
fn make_blobs(n: usize, d: usize, centers: usize, seed: u64) -> Matrix {
    snoopy_testutil::blob_cloud(seed, n, d, centers, 4.0, 0.15)
}

/// Cold fold over the surviving window `[start, end)` with *global* row
/// indices — the reference every slid eviction state must match bit for bit.
fn cold_window_table(
    train: DatasetView<'_>,
    queries: DatasetView<'_>,
    metric: Metric,
    k: usize,
    start: usize,
    end: usize,
    engine: &EvalEngine,
) -> NeighborTable {
    let window = train.slice_rows(start, end);
    let mut kernel = MetricKernel::new(metric);
    kernel.bind_queries(queries);
    kernel.bind_train(window);
    let mut states = vec![TopKState::new(k); queries.rows()];
    engine.update_topk(queries, &kernel, window, start, &mut states, None);
    NeighborTable::from_states(&states)
}

/// Median seconds per run of `f` over `reps` runs.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Case {
    train_n: usize,
    dim: usize,
    metric: Metric,
    serial_qps: f64,
    parallel_qps: f64,
}

struct TopKCase {
    train_n: usize,
    k: usize,
    serial_qps: f64,
    parallel_qps: f64,
}

struct LooCase {
    train_n: usize,
    serial_s: f64,
    parallel_s: f64,
}

struct ClusteredCase {
    train_n: usize,
    nlist: usize,
    k: usize,
    build_s: f64,
    exhaustive_qps: f64,
    clustered_qps: f64,
    cluster_prune_rate: f64,
    row_prune_rate: f64,
}

struct QuantizedCase {
    train_n: usize,
    nlist: usize,
    k: usize,
    quantize_s: f64,
    clustered_qps: f64,
    quantized_qps: f64,
    rerank_rate: f64,
    f32_bytes: usize,
    code_bytes: usize,
    meta_bytes: usize,
}

struct RepartitionCase {
    policy: &'static str,
    total_append_s: f64,
    repartitions: usize,
    row_prune_rate: f64,
    /// Cumulative k-means work (Lloyd's iterations plus batch assignment,
    /// in point–centroid pairs) across *all* partitions of the stream — the
    /// build-side cost the policy trades against query-side pruning.
    partition_pairs: u64,
}

struct PoolCase {
    train_n: usize,
    queries: usize,
    dim: usize,
    k: usize,
    /// Per-call seconds of the pre-pool fan-out: two scoped threads spawned
    /// and joined for every call.
    spawn_s: f64,
    /// Per-call seconds of the same two-way fan-out on the persistent pool.
    pool_s: f64,
    /// Per-call seconds of the pool path with caller-owned scratch
    /// (`topk_with`) — the allocation-free steady-state serving loop.
    scratch_s: f64,
}

struct ServerCase {
    tenants: usize,
    requests_per_tenant: usize,
    /// Sequential cold one-shot studies over the same task mix.
    serial_studies_per_s: f64,
    /// The warm multi-tenant service on the shared pool.
    served_studies_per_s: f64,
}

struct OocoreCase {
    train_n: usize,
    dim: usize,
    eval_rows: usize,
    nlist: usize,
    /// Resident shard budget the paged study ran under (bytes).
    budget_bytes: usize,
    /// Raw feature payload of the whole dataset (bytes) — `budget_factor` ×
    /// the budget.
    dataset_bytes: usize,
    /// How many times over budget the dataset is (≥ 4, ≥ 8 on the largest
    /// case).
    budget_factor: usize,
    /// End-to-end feasibility-study throughput, shard-paged (prefetch off —
    /// the serial baseline PR 9 established).
    paged_qps: f64,
    /// End-to-end feasibility-study throughput, fully resident.
    resident_qps: f64,
    /// Query-phase throughput of a prebuilt paged index, serial paging
    /// (prefetch depth 0).
    serial_query_qps: f64,
    /// Query-phase throughput of the same index with the prefetch pipeline
    /// on (`prefetch_depth` shards ahead).
    prefetch_query_qps: f64,
    /// Pipeline depth of the prefetch query-phase measurement.
    prefetch_depth: usize,
    shards_faulted: usize,
    shards_evicted: usize,
    bytes_faulted: usize,
    /// Speculative loads issued / committed / dropped across the prefetch
    /// query-phase runs.
    shards_prefetched: usize,
    prefetch_committed: usize,
    prefetch_wasted: usize,
    peak_bytes: usize,
    max_shard_bytes: usize,
}

struct KernelCase {
    train_n: usize,
    dim: usize,
    metric: Metric,
    k: usize,
    scalar_qps: f64,
    tiled_qps: f64,
}

struct IncrementalRound {
    consumed: usize,
    append_s: f64,
    rebuild_s: f64,
}

struct IncrementalCase {
    train_n: usize,
    dim: usize,
    k: usize,
    queries: usize,
    rounds: Vec<IncrementalRound>,
    relabel_refresh_s: f64,
}

struct EvictionSlide {
    position: usize,
    window_start: usize,
    append_evict_s: f64,
    rebuild_s: f64,
    affected_queries: usize,
    /// Whether this slide's append crossed the re-partition trigger and
    /// rebuilt the coarse partition (an amortised, policy-scheduled cost —
    /// such slides are exempt from the per-slide ≥ 2× contract).
    repartitioned: bool,
}

struct EvictionCase {
    train_n: usize,
    dim: usize,
    k: usize,
    queries: usize,
    window: usize,
    slide: usize,
    slack: usize,
    backend: &'static str,
    slides: Vec<EvictionSlide>,
}

/// The pre-tile-kernel (PR-3) exhaustive path, reproduced locally as the
/// single-core timing baseline: a blocked scan computing every pair with the
/// scalar per-element loops (`Matrix::row_sq_dist` / `row_dot` / `row_norm`)
/// the engine used before the kernel layer. Only timed — its distance *bits*
/// differ from today's fixed-order kernel, so parity is asserted against
/// `knn_reference` instead.
fn scalar_topk(train: DatasetView<'_>, queries: DatasetView<'_>, metric: Metric, k: usize) -> NeighborTable {
    const BLOCK_ROWS: usize = 128;
    let (mut qn, mut tn) = (Vec::new(), Vec::new());
    if metric == Metric::Cosine {
        qn.extend(queries.rows_iter().map(Matrix::row_norm));
        tn.extend(train.rows_iter().map(Matrix::row_norm));
    }
    let mut states = vec![TopKState::new(k); queries.rows()];
    for (block_idx, block) in train.batches(BLOCK_ROWS).enumerate() {
        let base = block_idx * BLOCK_ROWS;
        for (qi, state) in states.iter_mut().enumerate() {
            let q = queries.row(qi);
            match metric {
                Metric::SquaredEuclidean => {
                    for (j, row) in block.rows_iter().enumerate() {
                        state.offer(Matrix::row_sq_dist(q, row), base + j);
                    }
                }
                Metric::Euclidean => {
                    for (j, row) in block.rows_iter().enumerate() {
                        state.offer(Matrix::row_sq_dist(q, row).sqrt(), base + j);
                    }
                }
                Metric::Cosine => {
                    let na = qn[qi];
                    for (j, row) in block.rows_iter().enumerate() {
                        let nb = tn[base + j];
                        let d = if na == 0.0 && nb == 0.0 {
                            0.0
                        } else if na == 0.0 || nb == 0.0 {
                            2.0
                        } else {
                            1.0 - (Matrix::row_dot(q, row) / (na * nb)).clamp(-1.0, 1.0)
                        };
                        state.offer(d, base + j);
                    }
                }
            }
        }
    }
    NeighborTable::from_states(&states)
}

/// The pre-pool per-call fan-out, reproduced locally as the spawn-churn
/// baseline: two OS threads are spawned and joined for every call, each
/// running the serial engine over half the queries — exactly the per-call
/// thread churn the engine paid before the persistent pool. Results are
/// asserted bit-identical to the reference before timing.
fn scoped_spawn_topk(
    train: DatasetView<'_>,
    queries: DatasetView<'_>,
    metric: Metric,
    k: usize,
) -> [NeighborTable; 2] {
    let serial = EvalEngine::serial();
    let mid = queries.rows() / 2;
    let (head, tail) = (queries.prefix(mid), queries.slice_rows(mid, queries.rows()));
    let mut tables = [NeighborTable::default(), NeighborTable::default()];
    let [t0, t1] = &mut tables;
    std::thread::scope(|scope| {
        scope.spawn(|| *t0 = serial.topk(train, head, metric, k));
        scope.spawn(|| *t1 = serial.topk(train, tail, metric, k));
    });
    tables
}

fn main() {
    let scale = snoopy_bench::scale_from_args();
    let (sizes, queries, dim, reps): (&[usize], usize, usize, usize) = match scale {
        snoopy_data::registry::SizeScale::Tiny => (&[500, 1_000], 100, 32, 5),
        snoopy_data::registry::SizeScale::Standard => (&[2_000, 8_000, 32_000], 500, 64, 7),
        _ => (&[1_000, 4_000, 16_000], 250, 64, 5),
    };

    let threads = EvalEngine::parallel().threads();
    let query_x = make_data(queries, dim, 1);
    let mut cases = Vec::new();
    let mut topk_cases = Vec::new();
    let mut loo_cases = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let train_x = make_data(n, dim, 2 + i as u64);
        for metric in [Metric::SquaredEuclidean, Metric::Cosine] {
            let serial = EvalEngine::serial();
            let parallel = EvalEngine::parallel();
            // Confirm parity before timing anything.
            assert_eq!(
                parallel.nearest(train_x.view(), query_x.view(), metric),
                nearest_reference(train_x.view(), query_x.view(), metric),
                "parallel engine must be bit-identical to the serial reference"
            );
            let t_serial = time_median(reps, || {
                std::hint::black_box(serial.nearest(train_x.view(), query_x.view(), metric));
            });
            let t_parallel = time_median(reps, || {
                std::hint::black_box(parallel.nearest(train_x.view(), query_x.view(), metric));
            });
            let case = Case {
                train_n: n,
                dim,
                metric,
                serial_qps: queries as f64 / t_serial,
                parallel_qps: queries as f64 / t_parallel,
            };
            println!(
                "n={:>6} d={} {:<13} serial {:>10.0} q/s   parallel({} threads) {:>10.0} q/s   speedup {:.2}x",
                case.train_n,
                case.dim,
                metric.name(),
                case.serial_qps,
                threads,
                case.parallel_qps,
                case.parallel_qps / case.serial_qps,
            );
            cases.push(case);
        }

        // Top-k kernel, squared Euclidean (the estimator pipeline's metric):
        // parity is asserted against the sort-based ground truth, but the
        // timed serial baseline is the same kernel on a one-thread engine —
        // a fair comparison that isolates parallelism.
        let serial = EvalEngine::serial();
        let parallel = EvalEngine::parallel();
        for k in [1usize, 10] {
            assert_eq!(
                parallel.topk(train_x.view(), query_x.view(), Metric::SquaredEuclidean, k),
                knn_reference(train_x.view(), query_x.view(), Metric::SquaredEuclidean, k),
                "parallel top-k must be bit-identical to the serial reference"
            );
            let t_serial = time_median(reps, || {
                std::hint::black_box(serial.topk(
                    train_x.view(),
                    query_x.view(),
                    Metric::SquaredEuclidean,
                    k,
                ));
            });
            let t_parallel = time_median(reps, || {
                std::hint::black_box(parallel.topk(
                    train_x.view(),
                    query_x.view(),
                    Metric::SquaredEuclidean,
                    k,
                ));
            });
            let case = TopKCase {
                train_n: n,
                k,
                serial_qps: queries as f64 / t_serial,
                parallel_qps: queries as f64 / t_parallel,
            };
            println!(
                "n={:>6} d={} top-{:<2} {:<7} serial {:>10.0} q/s   parallel({} threads) {:>10.0} q/s   speedup {:.2}x",
                case.train_n,
                dim,
                k,
                "sq-euc",
                case.serial_qps,
                threads,
                case.parallel_qps,
                case.parallel_qps / case.serial_qps,
            );
            topk_cases.push(case);
        }

        // Leave-one-out 1NN error over the training set itself: the parallel
        // self-excluding kernel vs the same kernel on a one-thread engine.
        let labels: Vec<u32> = (0..n).map(|j| (j % 10) as u32).collect();
        let index = BruteForceIndex::new(&train_x, &labels, 10, Metric::SquaredEuclidean);
        let serial_index = index.clone().with_engine(EvalEngine::serial());
        assert_eq!(
            index.leave_one_out_error().to_bits(),
            serial_index.leave_one_out_error().to_bits(),
            "parallel LOO must match the serial engine"
        );
        let loo_reps = reps.min(3);
        let t_serial = time_median(loo_reps, || {
            std::hint::black_box(serial_index.leave_one_out_error());
        });
        let t_parallel = time_median(loo_reps, || {
            std::hint::black_box(index.leave_one_out_error());
        });
        println!(
            "n={:>6} d={} leave-one-out     serial {:>9.4} s     parallel({} threads) {:>9.4} s     speedup {:.2}x",
            n,
            dim,
            t_serial,
            threads,
            t_parallel,
            t_serial / t_parallel,
        );
        loo_cases.push(LooCase { train_n: n, serial_s: t_serial, parallel_s: t_parallel });
    }

    // Scalar vs tiled kernel, single core: the PR-3 per-pair scalar scan
    // against today's tile-blocked MetricKernel path on a one-thread engine
    // — isolates the kernel-layer speedup from parallelism. Parity of the
    // tiled path is asserted bit for bit against the serial reference, and
    // across two tile sizes, before anything is timed.
    let (kernel_sizes, kernel_dims, kernel_queries, kernel_reps): (&[usize], &[usize], usize, usize) =
        match scale {
            snoopy_data::registry::SizeScale::Tiny => (&[2_000], &[16, 64], 100, 3),
            snoopy_data::registry::SizeScale::Standard => (&[2_000, 10_000, 16_000], &[16, 64, 256], 400, 5),
            _ => (&[2_000, 10_000, 16_000], &[16, 64, 256], 200, 3),
        };
    let kernel_k = 10;
    let mut kernel_cases = Vec::new();
    for (i, &n) in kernel_sizes.iter().enumerate() {
        for (j, &d) in kernel_dims.iter().enumerate() {
            let train_x = make_data(n, d, 200 + (i * 8 + j) as u64);
            let query_x = make_data(kernel_queries, d, 300 + (i * 8 + j) as u64);
            let serial = EvalEngine::serial();
            for metric in Metric::all() {
                let reference = knn_reference(train_x.view(), query_x.view(), metric, kernel_k);
                assert_eq!(
                    serial.topk(train_x.view(), query_x.view(), metric, kernel_k),
                    reference,
                    "tiled kernel must be bit-identical to the serial reference"
                );
                assert_eq!(
                    serial.with_tile_rows(23).topk(train_x.view(), query_x.view(), metric, kernel_k),
                    reference,
                    "tiled kernel must be bit-identical across tile sizes"
                );
                let t_scalar = time_median(kernel_reps, || {
                    std::hint::black_box(scalar_topk(train_x.view(), query_x.view(), metric, kernel_k));
                });
                let t_tiled = time_median(kernel_reps, || {
                    std::hint::black_box(serial.topk(train_x.view(), query_x.view(), metric, kernel_k));
                });
                let case = KernelCase {
                    train_n: n,
                    dim: d,
                    metric,
                    k: kernel_k,
                    scalar_qps: kernel_queries as f64 / t_scalar,
                    tiled_qps: kernel_queries as f64 / t_tiled,
                };
                println!(
                    "n={:>6} d={:>3} top-{:<2} {:<13} scalar {:>9.0} q/s   tiled(1 thread) {:>9.0} q/s   kernel speedup {:.2}x",
                    case.train_n,
                    case.dim,
                    kernel_k,
                    metric.name(),
                    case.scalar_qps,
                    case.tiled_qps,
                    case.tiled_qps / case.scalar_qps,
                );
                kernel_cases.push(case);
            }
        }
    }

    // Exhaustive vs clustered backend on a clustered synthetic workload:
    // parity is asserted bit for bit, the pruning rate must be non-zero
    // (otherwise the pruned path silently regressed to an exhaustive scan),
    // and both query paths are timed with the same parallel engine. The
    // k-means build is timed separately — it is a one-off cost amortised
    // over every query batch that reuses the index.
    let (clustered_sizes, clustered_queries): (&[usize], usize) = match scale {
        snoopy_data::registry::SizeScale::Tiny => (&[2_000], 150),
        snoopy_data::registry::SizeScale::Standard => (&[10_000, 32_000], 500),
        _ => (&[10_000, 16_000], 400),
    };
    let blob_dim = 32;
    let blob_centers = 64;
    let k = 10;
    let mut clustered_cases = Vec::new();
    for (i, &n) in clustered_sizes.iter().enumerate() {
        let train_x = make_blobs(n, blob_dim, blob_centers, 40 + i as u64);
        let query_x = make_blobs(clustered_queries, blob_dim, blob_centers, 80 + i as u64);
        let nlist = EvalBackend::default_nlist(n);
        let engine = EvalEngine::parallel();

        let build_start = Instant::now();
        let index =
            ClusteredIndex::build_with_engine(train_x.view(), Metric::SquaredEuclidean, nlist, engine);
        let build_s = build_start.elapsed().as_secs_f64();

        let (table, stats) = index.topk_with_stats(query_x.view(), k);
        assert_eq!(
            table,
            engine.topk(train_x.view(), query_x.view(), Metric::SquaredEuclidean, k),
            "clustered backend must be bit-identical to the exhaustive engine"
        );
        assert!(
            stats.cluster_prune_rate() > 0.0,
            "clustered backend pruned nothing (rate {}) — the pruned path regressed to exhaustive",
            stats.cluster_prune_rate()
        );

        let t_exhaustive = time_median(reps, || {
            std::hint::black_box(engine.topk(train_x.view(), query_x.view(), Metric::SquaredEuclidean, k));
        });
        let t_clustered = time_median(reps, || {
            std::hint::black_box(index.topk(query_x.view(), k));
        });
        let case = ClusteredCase {
            train_n: n,
            nlist,
            k,
            build_s,
            exhaustive_qps: clustered_queries as f64 / t_exhaustive,
            clustered_qps: clustered_queries as f64 / t_clustered,
            cluster_prune_rate: stats.cluster_prune_rate(),
            row_prune_rate: stats.row_prune_rate(),
        };
        println!(
            "n={:>6} d={} top-{:<2} clustered(nlist={:>3}) exhaustive {:>10.0} q/s   clustered {:>10.0} q/s   speedup {:.2}x   prune {:.1}% clusters / {:.1}% rows   build {:.3}s",
            case.train_n,
            blob_dim,
            k,
            nlist,
            case.exhaustive_qps,
            case.clustered_qps,
            case.clustered_qps / case.exhaustive_qps,
            100.0 * case.cluster_prune_rate,
            100.0 * case.row_prune_rate,
            build_s,
        );
        clustered_cases.push(case);
    }

    // Int8 two-phase scan vs the unquantized clustered scan, same partition:
    // loose, high-dimensional blobs (within-fraction 1.2 of the center
    // spread, d = 128) put the workload in the regime the quantized shadow
    // exists for — bound-based pruning decays toward a full scan and row
    // traffic dominates, so streaming one byte per dimension through the
    // integer dot tile beats streaming four. Parity is asserted bit for bit
    // against the exhaustive engine, the re-rank rate must be < 1 (the int8
    // bound actually excludes rows), the int8 scan copy must measure exactly
    // 4× smaller than the f32 rows, and at n ≥ 10k the quantized scan must
    // beat the unquantized one ≥ 2× — the headline contract of the shadow.
    let (quant_sizes, quant_queries): (&[usize], usize) = match scale {
        snoopy_data::registry::SizeScale::Tiny => (&[2_000], 100),
        snoopy_data::registry::SizeScale::Standard => (&[10_000, 16_000], 300),
        _ => (&[10_000, 16_000], 200),
    };
    let quant_dim = 128;
    let quant_centers = 64;
    let quant_k = 10;
    let mut quantized_cases = Vec::new();
    for (i, &n) in quant_sizes.iter().enumerate() {
        let train_x = snoopy_testutil::blob_cloud(140 + i as u64, n, quant_dim, quant_centers, 4.0, 1.2);
        let query_x =
            snoopy_testutil::blob_cloud(180 + i as u64, quant_queries, quant_dim, quant_centers, 4.0, 1.2);
        let nlist = EvalBackend::default_nlist(n);
        let engine = EvalEngine::parallel();
        let plain =
            ClusteredIndex::build_with_engine(train_x.view(), Metric::SquaredEuclidean, nlist, engine);
        let quantize_start = Instant::now();
        let quantized = plain.clone().quantize();
        let quantize_s = quantize_start.elapsed().as_secs_f64();
        assert!(quantized.is_quantized(), "sane blob data must accept the int8 shadow");

        let (table, stats) = quantized.topk_with_stats(query_x.view(), quant_k);
        assert_eq!(
            table,
            engine.topk(train_x.view(), query_x.view(), Metric::SquaredEuclidean, quant_k),
            "quantized scan must be bit-identical to the exhaustive engine"
        );
        assert!(stats.rows_quantized > 0, "quantized index never took the int8 phase: {stats:?}");
        let rerank_rate = stats.rerank_rate();
        assert!(
            rerank_rate < 1.0,
            "int8 bound re-ranked every phase-1 row (rate {rerank_rate}) — the widened bound prunes nothing"
        );
        let rb = quantized.resident_bytes();
        assert_eq!(rb.quantized_codes * 4, rb.train_rows, "int8 scan copy must be exactly 4x smaller");

        let t_plain = time_median(reps, || {
            std::hint::black_box(plain.topk(query_x.view(), quant_k));
        });
        let t_quant = time_median(reps, || {
            std::hint::black_box(quantized.topk(query_x.view(), quant_k));
        });
        if n >= 10_000 {
            assert!(
                t_plain / t_quant >= 2.0,
                "quantized scan must beat the unquantized clustered scan >= 2x at n = {n} \
                 (got {:.2}x) — the two-phase scan regressed below its headline contract",
                t_plain / t_quant
            );
        }
        let case = QuantizedCase {
            train_n: n,
            nlist,
            k: quant_k,
            quantize_s,
            clustered_qps: quant_queries as f64 / t_plain,
            quantized_qps: quant_queries as f64 / t_quant,
            rerank_rate,
            f32_bytes: rb.train_rows,
            code_bytes: rb.quantized_codes,
            meta_bytes: rb.quantized_meta,
        };
        println!(
            "n={:>6} d={quant_dim} top-{quant_k} quantized(nlist={:>3}) clustered {:>8.0} q/s   int8 two-phase {:>8.0} q/s   speedup {:.2}x   rerank {:.1}%   codes {:.1} MiB vs f32 {:.1} MiB   quantize {:.3}s",
            case.train_n,
            nlist,
            case.clustered_qps,
            case.quantized_qps,
            case.quantized_qps / case.clustered_qps,
            100.0 * rerank_rate,
            case.code_bytes as f64 / (1024.0 * 1024.0),
            case.f32_bytes as f64 / (1024.0 * 1024.0),
            quantize_s,
        );
        quantized_cases.push(case);
    }

    // Incremental successor state vs full rebuild: each bandit-style round
    // appends one batch into the growing per-query top-k state
    // (O(batch × queries) kernel work) while the baseline rebuilds the whole
    // prefix table cold (O(consumed × queries)). Parity is asserted bit for
    // bit at every round boundary, and at n ≥ 10k the final round's append
    // must beat the rebuild by ≥ 2× — the contract that makes the bandit
    // loop's incrementality real. The relabel refresh (1% of train labels
    // cleaned, error re-read) is timed as the cleaning-loop latency anchor.
    let (incr_sizes, incr_queries): (&[usize], usize) = match scale {
        snoopy_data::registry::SizeScale::Tiny => (&[10_000], 150),
        snoopy_data::registry::SizeScale::Standard => (&[10_000, 32_000], 500),
        _ => (&[10_000, 16_000], 400),
    };
    let incr_dim = 32;
    let incr_k = 10;
    let incr_rounds = 5;
    let incr_reps = reps.min(3);
    let mut incremental_cases = Vec::new();
    for (i, &n) in incr_sizes.iter().enumerate() {
        let train_x = make_data(n, incr_dim, 500 + i as u64);
        let train_y: Vec<u32> = (0..n).map(|j| (j % 10) as u32).collect();
        let query_x = make_data(incr_queries, incr_dim, 600 + i as u64);
        let query_y: Vec<u32> = (0..incr_queries).map(|j| (j % 10) as u32).collect();
        let engine = EvalEngine::parallel();
        let batch = n / incr_rounds;
        let mut state =
            IncrementalTopK::new(query_x.clone(), query_y.clone(), Metric::SquaredEuclidean, incr_k);
        let mut rounds = Vec::new();
        let mut consumed = 0usize;
        while consumed < n {
            let end = (consumed + batch).min(n);
            let batch_view = train_x.view().slice_rows(consumed, end);
            let batch_labels = &train_y[consumed..end];
            let t_append = time_median(incr_reps, || {
                let mut s = state.clone();
                std::hint::black_box(s.append(batch_view, batch_labels));
            });
            state.append(batch_view, batch_labels);
            consumed = end;
            let prefix = train_x.view().prefix(consumed);
            let t_rebuild = time_median(incr_reps, || {
                std::hint::black_box(engine.topk(prefix, query_x.view(), Metric::SquaredEuclidean, incr_k));
            });
            assert_eq!(
                state.table(),
                engine.topk(prefix, query_x.view(), Metric::SquaredEuclidean, incr_k),
                "incremental state must be bit-identical to a cold rebuild at every round"
            );
            println!(
                "n={:>6} d={incr_dim} top-{incr_k} incremental round @{:>6} rows   append {:>9.2} ms   rebuild {:>9.2} ms   speedup {:.2}x",
                n,
                consumed,
                t_append * 1e3,
                t_rebuild * 1e3,
                t_rebuild / t_append,
            );
            rounds.push(IncrementalRound { consumed, append_s: t_append, rebuild_s: t_rebuild });
        }
        let last = rounds.last().expect("at least one round");
        if n >= 10_000 {
            assert!(
                last.rebuild_s / last.append_s >= 2.0,
                "append fold must beat the full rebuild by >= 2x at n = {n} (got {:.2}x) — the \
                 incremental path regressed to rebuild-shaped work",
                last.rebuild_s / last.append_s
            );
        }
        // Relabel refresh: clean 1% of the training labels, re-read the
        // error — the O(test) cleaning-loop latency.
        let dirty: Vec<(usize, u32)> = (0..n / 100).map(|j| (j * 100, ((j + 1) % 10) as u32)).collect();
        let t_relabel = time_median(incr_reps.max(3), || {
            let mut s = state.clone();
            s.relabel_train_batch(&dirty);
            std::hint::black_box(s.error());
        });
        println!("n={:>6} d={incr_dim} relabel 1% + error refresh {:>9.4} ms", n, t_relabel * 1e3);
        incremental_cases.push(IncrementalCase {
            train_n: n,
            dim: incr_dim,
            k: incr_k,
            queries: incr_queries,
            rounds,
            relabel_refresh_s: t_relabel,
        });
    }

    // Sliding-window eviction vs cold window rebuild: an eviction-enabled
    // state holds a constant-size window of the stream; every slide appends
    // one batch and ages the same number of rows out. The incremental slide
    // costs O(batch × queries) append work plus a re-scan of only the
    // queries whose admission buffers drained (reported per slide), while
    // the cold baseline rebuilds the whole surviving window —
    // O(window × queries). Parity with a cold fold of the surviving window
    // (global indices) is asserted at every position, and at n ≥ 10k every
    // steady-state exhaustive slide must beat the rebuild by ≥ 2× — the
    // contract that makes eviction a slide, not a rebuild in disguise
    // (quantized slides also pay per-slide index compaction; see below).
    let evict_k = 10;
    let evict_slack = 10;
    let mut eviction_cases = Vec::new();
    for (i, &n) in incr_sizes.iter().enumerate() {
        let window = n / 2;
        let slide = n / 20;
        let train_x = make_data(n, incr_dim, 520 + i as u64);
        let train_y: Vec<u32> = (0..n).map(|j| (j % 10) as u32).collect();
        let query_x = make_data(incr_queries, incr_dim, 620 + i as u64);
        let query_y: Vec<u32> = (0..incr_queries).map(|j| (j % 10) as u32).collect();
        let engine = EvalEngine::parallel();
        for (backend_name, backend) in [
            ("exhaustive", EvalBackend::Exhaustive),
            ("quantized", EvalBackend::quantized(EvalBackend::default_nlist(window))),
        ] {
            let mut state =
                IncrementalTopK::new(query_x.clone(), query_y.clone(), Metric::SquaredEuclidean, evict_k)
                    .with_backend(backend)
                    .with_eviction(evict_slack);
            // Pre-fill the window, then slide it over the rest of the stream.
            let mut consumed = 0usize;
            while consumed < window {
                let end = (consumed + slide).min(window);
                state.append(train_x.view().slice_rows(consumed, end), &train_y[consumed..end]);
                consumed = end;
            }
            let mut slides = Vec::new();
            let mut position = 0usize;
            while consumed < n {
                let end = (consumed + slide).min(n);
                let batch_view = train_x.view().slice_rows(consumed, end);
                let batch_labels = &train_y[consumed..end];
                let rows_out = end - consumed;
                // Each rep replays the slide on a fresh clone; the clone
                // itself (large for the quantized window index) is re-seeding
                // machinery, not slide work, so it stays outside the timer.
                let t_slide = {
                    let mut times: Vec<f64> = Vec::with_capacity(incr_reps);
                    for _ in 0..incr_reps {
                        let mut s = state.clone();
                        let start = Instant::now();
                        s.append(batch_view, batch_labels);
                        std::hint::black_box(s.evict_oldest(rows_out));
                        times.push(start.elapsed().as_secs_f64());
                    }
                    times.sort_by(f64::total_cmp);
                    times[times.len() / 2]
                };
                let reps_before = state.repartitions();
                state.append(batch_view, batch_labels);
                let report = state.evict_oldest(rows_out);
                let repartitioned = state.repartitions() > reps_before;
                consumed = end;
                position += 1;
                let start = state.window_start();
                let t_rebuild = time_median(incr_reps, || {
                    std::hint::black_box(engine.topk(
                        train_x.view().slice_rows(start, consumed),
                        query_x.view(),
                        Metric::SquaredEuclidean,
                        evict_k,
                    ));
                });
                assert_eq!(
                    state.table(),
                    cold_window_table(
                        train_x.view(),
                        query_x.view(),
                        Metric::SquaredEuclidean,
                        evict_k,
                        start,
                        consumed,
                        &engine
                    ),
                    "slid window must be bit-identical to a cold fold of the surviving window \
                     ({backend_name}, position {position})"
                );
                if n >= 10_000 && !repartitioned {
                    // The exhaustive backend is the headline contract: a
                    // slide touches O(batch × queries + affected × window)
                    // work and must beat the O(window × queries) rebuild
                    // by 2×. The quantized backend additionally compacts
                    // its persistent window index and int8 shadow in place
                    // on every eviction — O(window) memtraffic the rebuild
                    // never pays — so it is held to the weaker bar of never
                    // being slower than the rebuild.
                    let floor = if backend_name == "exhaustive" { 2.0 } else { 1.0 };
                    assert!(
                        t_rebuild / t_slide >= floor,
                        "append+evict must beat the cold window rebuild >= {floor}x at n = {n} \
                         ({backend_name}, position {position}, got {:.2}x) — eviction regressed \
                         to rebuild-shaped work",
                        t_rebuild / t_slide
                    );
                }
                println!(
                    "n={:>6} d={incr_dim} top-{evict_k} eviction({backend_name:<10}) slide @[{:>6}, {:>6})   append+evict {:>8.2} ms   rebuild {:>8.2} ms   speedup {:.2}x   re-scanned {:>3} queries{}",
                    n,
                    start,
                    consumed,
                    t_slide * 1e3,
                    t_rebuild * 1e3,
                    t_rebuild / t_slide,
                    report.affected_queries,
                    if repartitioned { "   (re-partitioned)" } else { "" },
                );
                slides.push(EvictionSlide {
                    position,
                    window_start: start,
                    append_evict_s: t_slide,
                    rebuild_s: t_rebuild,
                    affected_queries: report.affected_queries,
                    repartitioned,
                });
            }
            eviction_cases.push(EvictionCase {
                train_n: n,
                dim: incr_dim,
                k: evict_k,
                queries: incr_queries,
                window,
                slide,
                slack: evict_slack,
                backend: backend_name,
                slides,
            });
        }
    }

    // Re-partition policy sweep on the quantized incremental path: replay
    // the same append stream under each policy and compare total append
    // wall-clock, re-cluster count, and the cumulative row prune rate. The
    // stream *drifts*: every round's batch is drawn from blob centers whose
    // means walk by one unit per round, so a partition built on early rounds
    // goes stale and the policies differ in how quickly they chase the
    // moving distribution — the adversarial regime the ROADMAP asked the
    // `REPARTITION_GROWTH = 2.0` default to be validated against (the
    // original sweep used stationary blobs, where never re-clustering is
    // nearly free). Every policy must still land on the bit-identical final
    // table (policies only move *when* the partition is rebuilt, never what
    // a query answers).
    let (rep_n, rep_queries, rep_rounds): (usize, usize, usize) = match scale {
        snoopy_data::registry::SizeScale::Tiny => (4_000, 100, 8),
        snoopy_data::registry::SizeScale::Standard => (16_000, 300, 12),
        _ => (10_000, 200, 12),
    };
    let rep_dim = 32;
    let rep_k = 10;
    let rep_policies: [(&str, RepartitionPolicy); 4] = [
        ("growth-1.5", RepartitionPolicy::Growth(1.5)),
        ("growth-2.0", RepartitionPolicy::Growth(2.0)),
        ("growth-3.0", RepartitionPolicy::Growth(3.0)),
        ("prune-rate-0.5", RepartitionPolicy::PruneRate { min_row_prune: 0.5 }),
    ];
    // Walking batch means: round r's rows (and queries) are offset by
    // `r × drift` in every coordinate — a stream whose distribution the
    // early partition has never seen.
    let rep_drift = 1.0f32;
    let drifting = |total: usize, seed_base: u64| {
        let per_round = total.div_ceil(rep_rounds);
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(total);
        for r in 0..rep_rounds {
            let len = per_round.min(total - rows.len());
            if len == 0 {
                break;
            }
            let chunk = make_blobs(len, rep_dim, 64, seed_base + r as u64);
            let offset = rep_drift * r as f32;
            rows.extend(chunk.view().rows_iter().map(|row| row.iter().map(|v| v + offset).collect()));
        }
        Matrix::from_rows(&rows)
    };
    let rep_train = drifting(rep_n, 900);
    let rep_train_y: Vec<u32> = (0..rep_n).map(|j| (j % 10) as u32).collect();
    let rep_query = drifting(rep_queries, 950);
    let rep_query_y: Vec<u32> = (0..rep_queries).map(|j| (j % 10) as u32).collect();
    let rep_nlist = EvalBackend::default_nlist(rep_n);
    let rep_batch = rep_n.div_ceil(rep_rounds);
    let mut repartition_cases = Vec::new();
    let mut rep_reference_table = None;
    for (name, policy) in rep_policies {
        let replay = || {
            let mut state =
                IncrementalTopK::new(rep_query.clone(), rep_query_y.clone(), Metric::SquaredEuclidean, rep_k)
                    .with_backend(EvalBackend::quantized(rep_nlist))
                    .with_repartition_policy(policy);
            let mut consumed = 0usize;
            for chunk in rep_train.view().batches(rep_batch) {
                let len = chunk.rows();
                state.append(chunk, &rep_train_y[consumed..consumed + len]);
                consumed += len;
            }
            state
        };
        let probe = replay();
        let table = probe.table();
        match &rep_reference_table {
            None => rep_reference_table = Some(table),
            Some(reference) => assert_eq!(
                &table, reference,
                "policy {name} changed query results — policies may only move when re-partitions happen"
            ),
        }
        let t_total = time_median(incr_reps, || {
            std::hint::black_box(replay().error());
        });
        let case = RepartitionCase {
            policy: name,
            total_append_s: t_total,
            repartitions: probe.repartitions(),
            row_prune_rate: probe.prune_stats().row_prune_rate(),
            partition_pairs: probe.partition_pairs(),
        };
        println!(
            "n={rep_n:>6} d={rep_dim} top-{rep_k} repartition {:<14} total append {:>8.2} ms   re-clusters {}   row prune {:.1}%   k-means work {} pairs",
            case.policy,
            case.total_append_s * 1e3,
            case.repartitions,
            100.0 * case.row_prune_rate,
            case.partition_pairs,
        );
        repartition_cases.push(case);
    }

    // Persistent pool vs per-call thread churn: the same two-way query
    // fan-out per call, once through freshly spawned scoped threads (what
    // every engine call paid before the pool) and once through the
    // persistent pool (a queue push per chunk). Workloads are small on
    // purpose — that is where per-call overhead dominates and where the
    // bandit's per-round pulls and GHP's shrinking Prim frontiers actually
    // live. The scratch row is the pool path through `topk_with`: the
    // caller-owned kernel caches, per-query states, and output table make
    // the steady-state loop allocation-free. All three paths are asserted
    // bit-identical before timing.
    let pool_k = 10;
    let pool_reps = 30;
    let mut pool_cases = Vec::new();
    for (n, pool_queries, pool_dim) in [(256usize, 32usize, 16usize), (2_048, 64, 32)] {
        let train_x = make_data(n, pool_dim, 700);
        let query_x = make_data(pool_queries, pool_dim, 701);
        let reference = knn_reference(train_x.view(), query_x.view(), Metric::SquaredEuclidean, pool_k);
        let engine = EvalEngine::with_threads(2);
        let [head, tail] =
            scoped_spawn_topk(train_x.view(), query_x.view(), Metric::SquaredEuclidean, pool_k);
        let mid = query_x.rows() / 2;
        assert_eq!(
            head,
            knn_reference(train_x.view(), query_x.view().prefix(mid), Metric::SquaredEuclidean, pool_k)
        );
        assert_eq!(
            tail,
            knn_reference(
                train_x.view(),
                query_x.view().slice_rows(mid, query_x.rows()),
                Metric::SquaredEuclidean,
                pool_k
            ),
            "scoped-spawn baseline must match the reference"
        );
        assert_eq!(
            engine.topk(train_x.view(), query_x.view(), Metric::SquaredEuclidean, pool_k),
            reference,
            "pool-backed engine must match the reference"
        );
        let mut scratch = snoopy_knn::TopKScratch::new();
        assert_eq!(
            engine.topk_with(&mut scratch, train_x.view(), query_x.view(), Metric::SquaredEuclidean, pool_k),
            &reference,
            "scratch variant must match the reference"
        );
        let spawn_s = time_median(pool_reps, || {
            std::hint::black_box(scoped_spawn_topk(
                train_x.view(),
                query_x.view(),
                Metric::SquaredEuclidean,
                pool_k,
            ));
        });
        let pool_s = time_median(pool_reps, || {
            std::hint::black_box(engine.topk(
                train_x.view(),
                query_x.view(),
                Metric::SquaredEuclidean,
                pool_k,
            ));
        });
        let scratch_s = time_median(pool_reps, || {
            std::hint::black_box(engine.topk_with(
                &mut scratch,
                train_x.view(),
                query_x.view(),
                Metric::SquaredEuclidean,
                pool_k,
            ));
        });
        println!(
            "n={n:>6} d={pool_dim} q={pool_queries} top-{pool_k} pool      scoped-spawn {:>8.1} us/call   pool {:>8.1} us/call   pool+scratch {:>8.1} us/call   churn cut {:.2}x",
            spawn_s * 1e6,
            pool_s * 1e6,
            scratch_s * 1e6,
            spawn_s / pool_s,
        );
        pool_cases.push(PoolCase {
            train_n: n,
            queries: pool_queries,
            dim: pool_dim,
            k: pool_k,
            spawn_s,
            pool_s,
            scratch_s,
        });
    }

    // Multi-tenant serving: N tenants each submit R repeated feasibility
    // requests to one warm `FeasibilityService` (round 1 cold, later rounds
    // served from the per-tenant embedding caches, all tenants of a round
    // concurrent on the shared pool). The serial baseline answers the same
    // task mix with sequential cold one-shot studies — the pre-service
    // deployment model, paying full zoo inference per request. The scenario
    // itself asserts winner/BER parity and zero warm inference cost; here
    // the aggregate throughput at ≥ 2 tenants must additionally beat the
    // serial baseline, or warm serving has silently regressed.
    use snoopy_data::registry::{load_clean, SizeScale};
    let server_tasks = [
        load_clean("mnist", SizeScale::Tiny, 1),
        load_clean("sst2", SizeScale::Tiny, 3),
        load_clean("cifar10", SizeScale::Tiny, 5),
    ];
    let server_tenant_counts: &[usize] = match scale {
        snoopy_data::registry::SizeScale::Tiny => &[1, 2],
        _ => &[1, 2, 3],
    };
    let server_requests = 3usize;
    let server_config = snoopy_core::SnoopyConfig::with_target(0.85).batch_fraction(0.25);
    let mut server_cases = Vec::new();
    for &tenants in server_tenant_counts {
        let mix = &server_tasks[..tenants];
        let t_serial = time_median(3, || {
            for task in mix {
                let zoo = snoopy_embeddings::zoo_for_task(task, 7);
                for _ in 0..server_requests {
                    std::hint::black_box(snoopy_core::FeasibilityStudy::new(server_config).run(task, &zoo));
                }
            }
        });
        let serial_studies_per_s = (tenants * server_requests) as f64 / t_serial;
        let run = snoopy_e2e::run_server_scenario(mix, server_requests, server_config);
        if tenants >= 2 {
            assert!(
                run.studies_per_second > serial_studies_per_s,
                "warm multi-tenant serving ({:.2} studies/s at {tenants} tenants) must beat \
                 sequential cold studies ({serial_studies_per_s:.2} studies/s)",
                run.studies_per_second
            );
        }
        println!(
            "tenants={tenants} x {server_requests} requests   serial cold {:>7.2} studies/s   warm service {:>7.2} studies/s   speedup {:.2}x   ({} progress events)",
            serial_studies_per_s,
            run.studies_per_second,
            run.studies_per_second / serial_studies_per_s,
            run.progress_events,
        );
        server_cases.push(ServerCase {
            tenants,
            requests_per_tenant: server_requests,
            serial_studies_per_s,
            served_studies_per_s: run.studies_per_second,
        });
    }

    // Out-of-core: the full default-estimator feasibility study over a disk
    // dataset whose feature payload is `budget_factor`× the resident shard
    // budget, paged through the `ShardedIndex` vs the fully-resident
    // in-memory baseline, plus a query-phase comparison of serial paging vs
    // the prefetch pipeline on a prebuilt index (whole-study time is
    // dominated by the k-means build, so the pipeline's win is measured on
    // the paging+scanning loop alone). Parity is asserted bit for bit
    // (table, estimates, and the serial-vs-prefetch tables), the budget
    // must actually bind (≥ 2 shard evictions), and peak residency must
    // respect the `budget + max_shard × (1 + depth)` contract before
    // anything is timed. Paged throughput depends on page-fault and gather
    // cost (`io_dependent`), and the prefetch comparison degenerates to
    // serial-vs-serial without a second core (`thread_dependent`).
    // The 16k and 64k cases run at every scale on purpose (like the 10k
    // incremental case): the within-2×-of-resident assertion below only has
    // teeth at n ≥ 10 000, so even the tiny CI smoke exercises it. The
    // standard scale adds a 512k-row case at 8× over budget — the current
    // rung toward the million-row north star.
    let oocore_specs: &[(usize, usize, usize)] = match scale {
        snoopy_data::registry::SizeScale::Tiny => &[(2_000, 16, 4), (16_384, 32, 4), (65_536, 16, 4)],
        snoopy_data::registry::SizeScale::Standard => {
            &[(16_384, 32, 4), (65_536, 16, 4), (131_072, 16, 4), (524_288, 16, 8)]
        }
        _ => &[(8_000, 16, 4), (16_384, 32, 4), (65_536, 16, 4)],
    };
    const OOCORE_PREFETCH_DEPTH: usize = 4;
    let mut oocore_cases = Vec::new();
    for (i, &(n, d, budget_factor)) in oocore_specs.iter().enumerate() {
        let x = make_blobs(n, d, 32, 90 + i as u64);
        let y: Vec<u32> = (0..n).map(|r| (r % 4) as u32).collect();
        // The generated dataset lives in a scratch dir the guard removes on
        // drop — bench and test runs leave no artifacts behind.
        let dir = snoopy_testutil::TempDir::new("bench_oocore");
        snoopy_data::DiskLabeledDataset::write(dir.path(), &LabeledView::from_parts(x.view(), &y, 4))
            .expect("write out-of-core bench dataset");

        let eval_rows = (n / 8).min(512);
        let train_rows = n - eval_rows;
        let dataset_bytes = n * d * std::mem::size_of::<f32>();
        let budget_bytes = (train_rows * d * std::mem::size_of::<f32>()) / budget_factor;
        let cfg = snoopy_core::OutOfCoreConfig {
            shard_budget_bytes: budget_bytes,
            nlist: 32,
            eval_rows,
            quantize: false,
            // The whole-study timing keeps PR 9's serial-paging semantics;
            // the pipeline is measured separately on the query phase below.
            prefetch_depth: 0,
        };
        assert!(
            dataset_bytes >= budget_factor * budget_bytes,
            "the dataset must dwarf the budget {budget_factor}x"
        );

        let paged = snoopy_core::run_oocore_study(dir.path(), &cfg).expect("paged study");
        let resident = snoopy_core::run_resident_reference(dir.path(), &cfg).expect("resident study");
        assert_eq!(paged.table, resident.table, "paged table must be bit-identical to resident");
        assert_eq!(paged.estimates, resident.estimates, "estimates must be bit-identical");
        assert!(
            paged.paging.shards_evicted >= 2,
            "the budget must force ≥ 2 shard evictions, got {:?}",
            paged.paging
        );
        let rb = paged.residency;
        assert!(
            rb.peak <= rb.budget + rb.max_shard,
            "peak resident {} exceeds budget {} + largest shard {}",
            rb.peak,
            rb.budget,
            rb.max_shard
        );

        let t_paged = time_median(3, || {
            std::hint::black_box(snoopy_core::run_oocore_study(dir.path(), &cfg).expect("paged study"));
        });
        let t_resident = time_median(3, || {
            std::hint::black_box(
                snoopy_core::run_resident_reference(dir.path(), &cfg).expect("resident study"),
            );
        });
        let paged_qps = eval_rows as f64 / t_paged;
        let resident_qps = eval_rows as f64 / t_resident;
        if n >= 10_000 {
            assert!(
                2.0 * paged_qps >= resident_qps,
                "paged study ({paged_qps:.1} qps) fell more than 2x behind resident ({resident_qps:.1} qps) at n={n}"
            );
        }

        // Query-phase pipeline comparison on one prebuilt index: same
        // eviction-heavy budget, depth 0 vs depth 4, tables asserted
        // bit-identical. Each timed run re-pages most of its shards (the
        // budget is `budget_factor`× oversubscribed), so residual cache
        // state between runs is noise, not signal.
        let dataset = snoopy_data::DiskLabeledDataset::open(dir.path()).expect("open bench dataset");
        let full = dataset.view();
        let train_x = full.features().slice_rows(0, train_rows);
        let eval_x = full.features().slice_rows(train_rows, n);
        let kq = 8usize;
        let mut index =
            snoopy_knn::ShardedIndex::build(train_x, Metric::SquaredEuclidean, cfg.nlist, budget_bytes);
        index.set_prefetch_depth(0);
        let serial_table = index.topk(eval_x, kq); // warm-up + reference
        let t_serial_q = time_median(3, || {
            std::hint::black_box(index.topk(eval_x, kq));
        });
        index.set_prefetch_depth(OOCORE_PREFETCH_DEPTH);
        let before = index.paging_stats();
        let prefetch_table = index.topk(eval_x, kq); // warm-up on the pipeline
        assert_eq!(prefetch_table, serial_table, "prefetch must not change a single bit");
        let t_prefetch_q = time_median(3, || {
            std::hint::black_box(index.topk(eval_x, kq));
        });
        let after = index.paging_stats();
        let shards_prefetched = after.shards_prefetched - before.shards_prefetched;
        let prefetch_committed = after.prefetch_committed - before.prefetch_committed;
        let prefetch_wasted = after.prefetch_wasted - before.prefetch_wasted;
        let qrb = index.resident_bytes();
        assert!(
            qrb.peak <= qrb.budget + (1 + OOCORE_PREFETCH_DEPTH) * qrb.max_shard,
            "pipelined peak {} exceeds budget {} + (1 + {OOCORE_PREFETCH_DEPTH}) x largest shard {}",
            qrb.peak,
            qrb.budget,
            qrb.max_shard
        );
        let serial_query_qps = eval_rows as f64 / t_serial_q;
        let prefetch_query_qps = eval_rows as f64 / t_prefetch_q;
        let host_cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        if threads >= 2 && host_cores >= 2 && n >= 32_768 {
            assert!(
                prefetch_query_qps >= 1.2 * serial_query_qps,
                "prefetch query phase ({prefetch_query_qps:.1} qps) must beat serial paging \
                 ({serial_query_qps:.1} qps) by >= 1.2x at n={n} on {threads} workers"
            );
        }

        println!(
            "oocore n={n} d={d}   budget {:.1} MiB / dataset {:.1} MiB ({budget_factor}x)   paged {:>7.1} qps   resident {:>7.1} qps   ratio {:.2}x   query serial {:>7.1} qps   prefetch(x{OOCORE_PREFETCH_DEPTH}) {:>7.1} qps ({:.2}x)   ({} faults, {} evictions, {}/{} commits/wasted)",
            budget_bytes as f64 / (1 << 20) as f64,
            dataset_bytes as f64 / (1 << 20) as f64,
            paged_qps,
            resident_qps,
            paged_qps / resident_qps,
            serial_query_qps,
            prefetch_query_qps,
            prefetch_query_qps / serial_query_qps,
            paged.paging.shards_faulted,
            paged.paging.shards_evicted,
            prefetch_committed,
            prefetch_wasted,
        );
        oocore_cases.push(OocoreCase {
            train_n: n,
            dim: d,
            eval_rows,
            nlist: cfg.nlist,
            budget_bytes,
            dataset_bytes,
            budget_factor,
            paged_qps,
            resident_qps,
            serial_query_qps,
            prefetch_query_qps,
            prefetch_depth: OOCORE_PREFETCH_DEPTH,
            shards_faulted: paged.paging.shards_faulted,
            shards_evicted: paged.paging.shards_evicted,
            bytes_faulted: paged.paging.bytes_faulted,
            shards_prefetched,
            prefetch_committed,
            prefetch_wasted,
            peak_bytes: rb.peak,
            max_shard_bytes: rb.max_shard,
        });
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"knn_kernels\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    // Per-section provenance: say what each section's speedup compares and
    // whether that comparison depends on the thread count. A blanket
    // "single-core numbers are noise" note would be wrong for most of the
    // file — kernel/clustered/quantized/incremental/repartition sections
    // compare two single-threaded code paths and are valid on any host; only
    // the serial-vs-parallel sections degenerate when threads == 1.
    let _ = writeln!(json, "  \"section_meta\": {{");
    let thread_dep = |name: &str, compares: &str| {
        format!("    \"{name}\": {{\"compares\": \"{compares}\", \"thread_dependent\": true}},")
    };
    let thread_free = |name: &str, compares: &str| {
        format!("    \"{name}\": {{\"compares\": \"{compares}\", \"thread_dependent\": false}},")
    };
    let _ = writeln!(json, "{}", thread_dep("cases", "serial vs parallel full-scan labeling"));
    let _ = writeln!(json, "{}", thread_dep("topk_cases", "serial vs parallel top-k extraction"));
    let _ = writeln!(json, "{}", thread_dep("leave_one_out", "serial vs parallel LOO error"));
    let _ = writeln!(json, "{}", thread_free("kernel_cases", "scalar vs tile-blocked distance kernel"));
    let _ = writeln!(
        json,
        "{}",
        thread_free("clustered_cases", "exhaustive scan vs triangle-pruned clustered index")
    );
    let _ =
        writeln!(json, "{}", thread_free("quantized_cases", "plain clustered scan vs int8 two-phase scan"));
    let _ = writeln!(json, "{}", thread_free("incremental_cases", "incremental append vs cold rebuild"));
    let _ = writeln!(
        json,
        "{}",
        thread_free("eviction_cases", "sliding-window append+evict vs cold rebuild of the surviving window")
    );
    let _ = writeln!(
        json,
        "{}",
        thread_free("repartition_cases", "re-partition policies on a drifting quantized append stream")
    );
    let _ = writeln!(
        json,
        "{}",
        thread_dep("pool_cases", "per-call scoped thread spawn vs persistent pool submit")
    );
    let _ = writeln!(
        json,
        "    \"oocore_cases\": {{\"compares\": \"shard-paged out-of-core study vs fully-resident study, plus serial paging vs the prefetch pipeline on the query phase\", \"thread_dependent\": true, \"io_dependent\": true}},"
    );
    let _ = writeln!(
        json,
        "    \"server_cases\": {{\"compares\": \"sequential cold studies vs warm multi-tenant service\", \"thread_dependent\": true}}"
    );
    let _ = writeln!(json, "  }},");
    if threads == 1 {
        let _ = writeln!(
            json,
            "  \"note\": \"single-core host: thread_dependent sections degenerate to serial-vs-serial; regenerate those on a multi-core machine\","
        );
    }
    let _ = writeln!(json, "  \"queries\": {queries},");
    let _ = writeln!(json, "  \"cases\": [");
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"train_n\": {}, \"dim\": {}, \"metric\": \"{}\", \"serial_qps\": {:.1}, \"parallel_qps\": {:.1}, \"speedup\": {:.3}}}{comma}",
            c.train_n,
            c.dim,
            c.metric.name(),
            c.serial_qps,
            c.parallel_qps,
            c.parallel_qps / c.serial_qps,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"topk_cases\": [");
    for (i, c) in topk_cases.iter().enumerate() {
        let comma = if i + 1 < topk_cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"train_n\": {}, \"dim\": {dim}, \"k\": {}, \"metric\": \"sq-euclidean\", \"serial_qps\": {:.1}, \"parallel_qps\": {:.1}, \"speedup\": {:.3}}}{comma}",
            c.train_n,
            c.k,
            c.serial_qps,
            c.parallel_qps,
            c.parallel_qps / c.serial_qps,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"leave_one_out\": [");
    for (i, c) in loo_cases.iter().enumerate() {
        let comma = if i + 1 < loo_cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"train_n\": {}, \"dim\": {dim}, \"metric\": \"sq-euclidean\", \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.3}}}{comma}",
            c.train_n,
            c.serial_s,
            c.parallel_s,
            c.serial_s / c.parallel_s,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"kernel_cases\": [");
    for (i, c) in kernel_cases.iter().enumerate() {
        let comma = if i + 1 < kernel_cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"train_n\": {}, \"dim\": {}, \"k\": {}, \"metric\": \"{}\", \"scalar_qps\": {:.1}, \"tiled_qps\": {:.1}, \"speedup\": {:.3}}}{comma}",
            c.train_n,
            c.dim,
            c.k,
            c.metric.name(),
            c.scalar_qps,
            c.tiled_qps,
            c.tiled_qps / c.scalar_qps,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"clustered_cases\": [");
    for (i, c) in clustered_cases.iter().enumerate() {
        let comma = if i + 1 < clustered_cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"train_n\": {}, \"dim\": {blob_dim}, \"centers\": {blob_centers}, \"nlist\": {}, \"k\": {}, \"metric\": \"sq-euclidean\", \"build_s\": {:.6}, \"exhaustive_qps\": {:.1}, \"clustered_qps\": {:.1}, \"speedup\": {:.3}, \"cluster_prune_rate\": {:.4}, \"row_prune_rate\": {:.4}}}{comma}",
            c.train_n,
            c.nlist,
            c.k,
            c.build_s,
            c.exhaustive_qps,
            c.clustered_qps,
            c.clustered_qps / c.exhaustive_qps,
            c.cluster_prune_rate,
            c.row_prune_rate,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"quantized_cases\": [");
    for (i, c) in quantized_cases.iter().enumerate() {
        let comma = if i + 1 < quantized_cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"train_n\": {}, \"dim\": {quant_dim}, \"centers\": {quant_centers}, \"nlist\": {}, \"k\": {}, \"metric\": \"sq-euclidean\", \"quantize_s\": {:.6}, \"clustered_qps\": {:.1}, \"quantized_qps\": {:.1}, \"speedup\": {:.3}, \"rerank_rate\": {:.4}, \"f32_bytes\": {}, \"code_bytes\": {}, \"meta_bytes\": {}}}{comma}",
            c.train_n,
            c.nlist,
            c.k,
            c.quantize_s,
            c.clustered_qps,
            c.quantized_qps,
            c.quantized_qps / c.clustered_qps,
            c.rerank_rate,
            c.f32_bytes,
            c.code_bytes,
            c.meta_bytes,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"incremental_cases\": [");
    for (i, c) in incremental_cases.iter().enumerate() {
        let comma = if i + 1 < incremental_cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"train_n\": {}, \"dim\": {}, \"k\": {}, \"queries\": {}, \"metric\": \"sq-euclidean\", \"relabel_refresh_s\": {:.6}, \"rounds\": [",
            c.train_n, c.dim, c.k, c.queries, c.relabel_refresh_s,
        );
        for (j, r) in c.rounds.iter().enumerate() {
            let rcomma = if j + 1 < c.rounds.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      {{\"consumed\": {}, \"append_s\": {:.6}, \"rebuild_s\": {:.6}, \"speedup\": {:.3}}}{rcomma}",
                r.consumed,
                r.append_s,
                r.rebuild_s,
                r.rebuild_s / r.append_s,
            );
        }
        let _ = writeln!(json, "    ]}}{comma}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"eviction_cases\": [");
    for (i, c) in eviction_cases.iter().enumerate() {
        let comma = if i + 1 < eviction_cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"train_n\": {}, \"dim\": {}, \"k\": {}, \"queries\": {}, \"window\": {}, \"slide\": {}, \"slack\": {}, \"backend\": \"{}\", \"metric\": \"sq-euclidean\", \"slides\": [",
            c.train_n, c.dim, c.k, c.queries, c.window, c.slide, c.slack, c.backend,
        );
        for (j, s) in c.slides.iter().enumerate() {
            let scomma = if j + 1 < c.slides.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      {{\"position\": {}, \"window_start\": {}, \"append_evict_s\": {:.6}, \"rebuild_s\": {:.6}, \"speedup\": {:.3}, \"affected_queries\": {}, \"repartitioned\": {}}}{scomma}",
                s.position,
                s.window_start,
                s.append_evict_s,
                s.rebuild_s,
                s.rebuild_s / s.append_evict_s,
                s.affected_queries,
                s.repartitioned,
            );
        }
        let _ = writeln!(json, "    ]}}{comma}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"repartition_cases\": [");
    for (i, c) in repartition_cases.iter().enumerate() {
        let comma = if i + 1 < repartition_cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"train_n\": {rep_n}, \"dim\": {rep_dim}, \"k\": {rep_k}, \"queries\": {rep_queries}, \"rounds\": {rep_rounds}, \"metric\": \"sq-euclidean\", \"policy\": \"{}\", \"total_append_s\": {:.6}, \"repartitions\": {}, \"row_prune_rate\": {:.4}, \"partition_pairs\": {}}}{comma}",
            c.policy,
            c.total_append_s,
            c.repartitions,
            c.row_prune_rate,
            c.partition_pairs,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"pool_cases\": [");
    for (i, c) in pool_cases.iter().enumerate() {
        let comma = if i + 1 < pool_cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"train_n\": {}, \"queries\": {}, \"dim\": {}, \"k\": {}, \"metric\": \"sq-euclidean\", \"spawn_s\": {:.9}, \"pool_s\": {:.9}, \"pool_scratch_s\": {:.9}, \"speedup\": {:.3}, \"scratch_speedup\": {:.3}}}{comma}",
            c.train_n,
            c.queries,
            c.dim,
            c.k,
            c.spawn_s,
            c.pool_s,
            c.scratch_s,
            c.spawn_s / c.pool_s,
            c.spawn_s / c.scratch_s,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"oocore_cases\": [");
    for (i, c) in oocore_cases.iter().enumerate() {
        let comma = if i + 1 < oocore_cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"train_n\": {}, \"dim\": {}, \"eval_rows\": {}, \"nlist\": {}, \"metric\": \"sq-euclidean\", \"budget_bytes\": {}, \"dataset_bytes\": {}, \"budget_factor\": {}, \"paged_qps\": {:.1}, \"resident_qps\": {:.1}, \"ratio\": {:.3}, \"serial_query_qps\": {:.1}, \"prefetch_query_qps\": {:.1}, \"prefetch_speedup\": {:.3}, \"prefetch_depth\": {}, \"shards_faulted\": {}, \"shards_evicted\": {}, \"bytes_faulted\": {}, \"shards_prefetched\": {}, \"prefetch_committed\": {}, \"prefetch_wasted\": {}, \"peak_bytes\": {}, \"max_shard_bytes\": {}}}{comma}",
            c.train_n,
            c.dim,
            c.eval_rows,
            c.nlist,
            c.budget_bytes,
            c.dataset_bytes,
            c.budget_factor,
            c.paged_qps,
            c.resident_qps,
            c.paged_qps / c.resident_qps,
            c.serial_query_qps,
            c.prefetch_query_qps,
            c.prefetch_query_qps / c.serial_query_qps,
            c.prefetch_depth,
            c.shards_faulted,
            c.shards_evicted,
            c.bytes_faulted,
            c.shards_prefetched,
            c.prefetch_committed,
            c.prefetch_wasted,
            c.peak_bytes,
            c.max_shard_bytes,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"server_cases\": [");
    for (i, c) in server_cases.iter().enumerate() {
        let comma = if i + 1 < server_cases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"tenants\": {}, \"requests_per_tenant\": {}, \"serial_studies_per_s\": {:.4}, \"served_studies_per_s\": {:.4}, \"speedup\": {:.3}}}{comma}",
            c.tenants,
            c.requests_per_tenant,
            c.serial_studies_per_s,
            c.served_studies_per_s,
            c.served_studies_per_s / c.serial_studies_per_s,
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let path = snoopy_bench::results_dir()
        .parent()
        .map(|p| p.join("BENCH_knn.json"))
        .unwrap_or_else(|| "BENCH_knn.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {path:?}: {e}"),
    }
}
