//! # snoopy-bench
//!
//! The experiment harness regenerating every table and figure of the paper's
//! evaluation section, plus Criterion micro-benchmarks.
//!
//! Each `exp_*` binary in `src/bin/` prints the rows/series of one table or
//! figure as a markdown-ish table on stdout and writes the same data as CSV
//! under `results/`. Binaries accept `--scale tiny|small|standard` (default
//! `small`) so that the full suite can be reproduced quickly on a laptop or
//! at a larger scale overnight; see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured comparisons.

use snoopy_data::registry::SizeScale;
use std::fs;
use std::path::PathBuf;

/// Parses `--scale` from the command line (default: `small`).
pub fn scale_from_args() -> SizeScale {
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == "--scale" {
            return match window[1].as_str() {
                "tiny" => SizeScale::Tiny,
                "standard" => SizeScale::Standard,
                _ => SizeScale::Small,
            };
        }
    }
    SizeScale::Small
}

/// Parses a `--<name> <value>` string argument.
pub fn string_arg(name: &str, default: &str) -> String {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == flag {
            return window[1].clone();
        }
    }
    default.to_string()
}

/// A small CSV + stdout results writer.
pub struct ResultsTable {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultsTable {
    /// Creates a table with a name (used as the CSV file name) and a header.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified by the caller).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width must match the header");
        self.rows.push(row);
    }

    /// Convenience: push a row of display-able values.
    pub fn push_display<T: std::fmt::Display>(&mut self, row: Vec<T>) {
        self.push(row.into_iter().map(|v| v.to_string()).collect());
    }

    /// Number of rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Prints the table to stdout and writes `results/<name>.csv`.
    pub fn finish(&self) {
        // Column widths for pretty stdout output.
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:<width$}", width = w)).collect();
            println!("| {} |", line.join(" | "));
        };
        println!("\n== {} ==", self.name);
        print_row(&self.header);
        println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            print_row(row);
        }

        let dir = results_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: could not create {dir:?}: {e}");
            return;
        }
        let path = dir.join(format!("{}.csv", self.name));
        let mut csv = self.header.join(",") + "\n";
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("warning: could not write {path:?}: {e}");
        } else {
            println!("(written to {})", path.display());
        }
    }
}

/// The directory experiment CSVs are written to (workspace `results/`).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats a float with 4 decimal places (shared by the binaries).
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with 1 decimal place.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_table_round_trips() {
        let mut t = ResultsTable::new("unit-test-table", &["a", "b"]);
        assert!(t.is_empty());
        t.push(vec!["1".into(), "2".into()]);
        t.push_display(vec![3.5, 4.5]);
        assert_eq!(t.len(), 2);
        t.finish();
        let path = results_dir().join("unit-test-table.csv");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("3.5,4.5"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_checked() {
        let mut t = ResultsTable::new("bad", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(f1(12.34), "12.3");
    }
}
