//! Criterion benchmark for Figure 12: scheduling overhead of the selection
//! strategies over pre-recorded convergence curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snoopy_bandit::{run_strategy, PrerecordedArm, SelectionStrategy};

fn make_arms(n_arms: usize, len: usize) -> Vec<PrerecordedArm> {
    (0..n_arms)
        .map(|i| {
            let asymptote = 0.05 + 0.4 * (i as f64 / n_arms as f64);
            let curve: Vec<f64> =
                (1..=len).map(|t| asymptote + (0.9 - asymptote) * (-(t as f64) / 8.0).exp()).collect();
            PrerecordedArm::new(&format!("arm{i}"), curve)
        })
        .collect()
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_selection_strategies");
    group.sample_size(20);
    for strategy in [
        SelectionStrategy::Uniform,
        SelectionStrategy::SuccessiveHalving,
        SelectionStrategy::SuccessiveHalvingTangent,
        SelectionStrategy::Exhaustive,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(strategy.name()), &strategy, |b, &s| {
            b.iter(|| {
                let mut arms = make_arms(20, 100);
                run_strategy(s, &mut arms, 600)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
