//! Criterion benchmark for Figure 13: incremental re-execution after label
//! cleaning versus recomputing the 1NN error from scratch, plus the
//! append-fold path of a single bandit round versus a full rebuild.

use criterion::{criterion_group, criterion_main, Criterion};
use snoopy_knn::{BruteForceIndex, EvalEngine, IncrementalTopK, Metric};
use snoopy_linalg::{rng, Matrix};

fn make_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<u32>) {
    let mut r = rng::seeded(seed);
    let x = Matrix::from_fn(n, d, |_, _| rng::normal(&mut r) as f32);
    let y = (0..n).map(|i| (i % 10) as u32).collect();
    (x, y)
}

fn bench_incremental_vs_scratch(c: &mut Criterion) {
    let (train_x, train_y) = make_data(5_000, 32, 1);
    let (test_x, test_y) = make_data(1_000, 32, 2);

    let mut group = c.benchmark_group("fig13_incremental_execution");
    group.sample_size(10);

    group.bench_function("from_scratch", |b| {
        b.iter(|| {
            BruteForceIndex::new(&train_x, &train_y, 10, Metric::SquaredEuclidean)
                .one_nn_error(&test_x, &test_y)
        })
    });

    let cache = IncrementalTopK::build(&train_x, &train_y, &test_x, &test_y, Metric::SquaredEuclidean, 1);
    group.bench_function("incremental_relabel", |b| {
        b.iter(|| {
            let mut c = cache.clone();
            // Clean 1% of the training labels and re-read the error.
            for i in 0..50 {
                c.relabel_train(i * 100, (i % 10) as u32);
            }
            c.error()
        })
    });

    // One bandit round: fold the next 10% batch into the grown state versus
    // rebuilding the whole prefix table cold.
    let split = 4_500;
    let mut grown = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 10);
    grown.append(train_x.view().prefix(split), &train_y[..split]);
    group.bench_function("append_one_round", |b| {
        b.iter(|| {
            let mut s = grown.clone();
            s.append(train_x.view().slice_rows(split, train_x.rows()), &train_y[split..])
        })
    });
    group.bench_function("rebuild_after_round", |b| {
        b.iter(|| EvalEngine::parallel().topk(train_x.view(), test_x.view(), Metric::SquaredEuclidean, 10))
    });
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_scratch);
criterion_main!(benches);
