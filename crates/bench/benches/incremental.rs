//! Criterion benchmark for Figure 13: incremental re-execution after label
//! cleaning versus recomputing the 1NN error from scratch.

use criterion::{criterion_group, criterion_main, Criterion};
use snoopy_knn::{BruteForceIndex, IncrementalOneNn, Metric};
use snoopy_linalg::{rng, Matrix};

fn make_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<u32>) {
    let mut r = rng::seeded(seed);
    let x = Matrix::from_fn(n, d, |_, _| rng::normal(&mut r) as f32);
    let y = (0..n).map(|i| (i % 10) as u32).collect();
    (x, y)
}

fn bench_incremental_vs_scratch(c: &mut Criterion) {
    let (train_x, train_y) = make_data(5_000, 32, 1);
    let (test_x, test_y) = make_data(1_000, 32, 2);

    let mut group = c.benchmark_group("fig13_incremental_execution");
    group.sample_size(10);

    group.bench_function("from_scratch", |b| {
        b.iter(|| {
            BruteForceIndex::new(&train_x, &train_y, 10, Metric::SquaredEuclidean)
                .one_nn_error(&test_x, &test_y)
        })
    });

    let cache = IncrementalOneNn::build(&train_x, &train_y, &test_x, &test_y, 10, Metric::SquaredEuclidean);
    group.bench_function("incremental_relabel", |b| {
        b.iter(|| {
            let mut c = cache.clone();
            // Clean 1% of the training labels and re-read the error.
            for i in 0..50 {
                c.relabel_train(i * 100, (i % 10) as u32);
            }
            c.error()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_scratch);
criterion_main!(benches);
