//! Criterion benchmark: cost of the different Bayes-error estimator families
//! on the same task (the efficiency half of the FeeBee comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snoopy_data::gaussian::{GaussianMixture, GaussianMixtureSpec};
use snoopy_estimators::{default_estimators, LabeledView};
use snoopy_linalg::rng;

fn bench_estimators(c: &mut Criterion) {
    let mixture = GaussianMixture::from_spec(&GaussianMixtureSpec {
        num_classes: 5,
        latent_dim: 16,
        class_sep: 2.0,
        within_std: 1.0,
        seed: 1,
    });
    let mut r = rng::seeded(2);
    let (train_x, train_y) = mixture.sample(1_000, &mut r);
    let (test_x, test_y) = mixture.sample(300, &mut r);
    let train = LabeledView::new(&train_x, &train_y);
    let test = LabeledView::new(&test_x, &test_y);

    let mut group = c.benchmark_group("ber_estimators");
    group.sample_size(10);
    for est in default_estimators() {
        group.bench_with_input(BenchmarkId::from_parameter(est.name()), &est, |b, est| {
            b.iter(|| est.estimate(&train, &test, 5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
