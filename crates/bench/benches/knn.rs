//! Criterion benchmark: exact brute-force 1NN scaling (the inner loop of
//! every Snoopy estimator evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snoopy_knn::{BruteForceIndex, Metric};
use snoopy_linalg::{rng, Matrix};

fn make_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<u32>) {
    let mut r = rng::seeded(seed);
    let x = Matrix::from_fn(n, d, |_, _| rng::normal(&mut r) as f32);
    let y = (0..n).map(|i| (i % 10) as u32).collect();
    (x, y)
}

fn bench_one_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_nn_error");
    group.sample_size(10);
    let (test_x, test_y) = make_data(200, 32, 1);
    for &n in &[500usize, 1_000, 2_000] {
        let (train_x, train_y) = make_data(n, 32, 2);
        let index = BruteForceIndex::new(&train_x, &train_y, 10, Metric::SquaredEuclidean);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| index.one_nn_error(&test_x, &test_y))
        });
    }
    group.finish();
}

fn bench_knn_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_query_k10");
    group.sample_size(10);
    let (train_x, train_y) = make_data(2_000, 32, 3);
    let index = BruteForceIndex::new(&train_x, &train_y, 10, Metric::SquaredEuclidean);
    let (query_x, _) = make_data(1, 32, 4);
    group.bench_function("single_query", |b| b.iter(|| index.query_knn(query_x.row(0), 10)));
    group.finish();
}

criterion_group!(benches, bench_one_nn, bench_knn_query);
criterion_main!(benches);
