//! Criterion benchmark: cost of the cheap LR-proxy baseline relative to a
//! single 1NN evaluation (the trade-off behind Figure 4's baselines).

use criterion::{criterion_group, criterion_main, Criterion};
use snoopy_knn::{BruteForceIndex, Metric};
use snoopy_linalg::{rng, Matrix};
use snoopy_models::{LogRegConfig, LogisticRegression};

fn make_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<u32>) {
    let mut r = rng::seeded(seed);
    let x = Matrix::from_fn(n, d, |_, _| rng::normal(&mut r) as f32);
    let y = (0..n).map(|i| (i % 4) as u32).collect();
    (x, y)
}

fn bench_logreg_vs_1nn(c: &mut Criterion) {
    let (train_x, train_y) = make_data(1_000, 32, 1);
    let (test_x, test_y) = make_data(300, 32, 2);

    let mut group = c.benchmark_group("proxy_model_cost");
    group.sample_size(10);
    group.bench_function("logreg_single_config", |b| {
        b.iter(|| {
            let model = LogisticRegression::fit(
                &train_x,
                &train_y,
                4,
                LogRegConfig { epochs: 10, ..Default::default() },
            );
            model.error(&test_x, &test_y)
        })
    });
    group.bench_function("one_nn_evaluation", |b| {
        b.iter(|| {
            BruteForceIndex::new(&train_x, &train_y, 4, Metric::SquaredEuclidean)
                .one_nn_error(&test_x, &test_y)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_logreg_vs_1nn);
criterion_main!(benches);
