//! A small multilayer perceptron (one hidden ReLU layer, softmax output)
//! trained with mini-batch SGD + momentum.
//!
//! Used as (a) a candidate family inside the AutoML search and (b) the
//! backbone of the FineTune baseline, which plays the role of the paper's
//! fine-tuned EfficientNet/BERT models.

use snoopy_linalg::{rng, stats, Matrix};

/// MLP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Width of the hidden layer.
    pub hidden: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Momentum coefficient.
    pub momentum: f64,
    /// L2 weight decay.
    pub l2: f64,
    /// Seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self { hidden: 64, learning_rate: 0.05, epochs: 30, batch_size: 64, momentum: 0.9, l2: 1e-4, seed: 0 }
    }
}

/// A trained MLP classifier.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    /// `d × h` first-layer weights.
    w1: Matrix,
    /// Hidden biases.
    b1: Vec<f32>,
    /// `h × C` output weights.
    w2: Matrix,
    /// Output biases.
    b2: Vec<f32>,
    num_classes: usize,
}

impl MlpClassifier {
    /// Trains the network.
    ///
    /// # Panics
    /// Panics on empty training data or out-of-range labels.
    pub fn fit(features: &Matrix, labels: &[u32], num_classes: usize, config: MlpConfig) -> Self {
        assert_eq!(features.rows(), labels.len(), "feature/label count mismatch");
        assert!(!labels.is_empty(), "cannot train on an empty dataset");
        assert!(labels.iter().all(|&y| (y as usize) < num_classes), "label out of range");
        let n = features.rows();
        let d = features.cols();
        let h = config.hidden.max(1);
        let mut r = rng::seeded(config.seed);
        let init1 = (2.0 / d as f64).sqrt();
        let init2 = (2.0 / h as f64).sqrt();
        let mut w1 = Matrix::from_fn(d, h, |_, _| (rng::normal(&mut r) * init1) as f32);
        let mut b1 = vec![0.0f32; h];
        let mut w2 = Matrix::from_fn(h, num_classes, |_, _| (rng::normal(&mut r) * init2) as f32);
        let mut b2 = vec![0.0f32; num_classes];
        let mut v_w1 = Matrix::zeros(d, h);
        let mut v_b1 = vec![0.0f32; h];
        let mut v_w2 = Matrix::zeros(h, num_classes);
        let mut v_b2 = vec![0.0f32; num_classes];

        let lr = config.learning_rate as f32;
        let mom = config.momentum as f32;
        let l2 = config.l2 as f32;
        let mut order: Vec<usize> = (0..n).collect();

        for _epoch in 0..config.epochs {
            rng::shuffle(&mut r, &mut order);
            for batch in order.chunks(config.batch_size.max(1)) {
                let mut g_w1 = Matrix::zeros(d, h);
                let mut g_b1 = vec![0.0f32; h];
                let mut g_w2 = Matrix::zeros(h, num_classes);
                let mut g_b2 = vec![0.0f32; num_classes];

                for &i in batch {
                    let x = features.row(i);
                    // Forward pass.
                    let mut hidden = vec![0.0f32; h];
                    for (j, hj) in hidden.iter_mut().enumerate() {
                        let mut acc = b1[j];
                        for (k, &xk) in x.iter().enumerate() {
                            acc += w1.get(k, j) * xk;
                        }
                        *hj = acc.max(0.0);
                    }
                    let mut logits = vec![0.0f32; num_classes];
                    for (c, lc) in logits.iter_mut().enumerate() {
                        let mut acc = b2[c];
                        for (j, &hj) in hidden.iter().enumerate() {
                            acc += w2.get(j, c) * hj;
                        }
                        *lc = acc;
                    }
                    let probs = stats::softmax_f32(&logits);
                    // Backward pass.
                    let mut delta_out = vec![0.0f32; num_classes];
                    for c in 0..num_classes {
                        delta_out[c] = probs[c] - if labels[i] as usize == c { 1.0 } else { 0.0 };
                    }
                    let mut delta_hidden = vec![0.0f32; h];
                    for j in 0..h {
                        if hidden[j] <= 0.0 {
                            continue;
                        }
                        let mut acc = 0.0f32;
                        for (c, &dc) in delta_out.iter().enumerate() {
                            acc += w2.get(j, c) * dc;
                        }
                        delta_hidden[j] = acc;
                    }
                    for (c, &dc) in delta_out.iter().enumerate() {
                        if dc == 0.0 {
                            continue;
                        }
                        g_b2[c] += dc;
                        for (j, &hj) in hidden.iter().enumerate() {
                            if hj != 0.0 {
                                let cur = g_w2.get(j, c);
                                g_w2.set(j, c, cur + dc * hj);
                            }
                        }
                    }
                    for (j, &dj) in delta_hidden.iter().enumerate() {
                        if dj == 0.0 {
                            continue;
                        }
                        g_b1[j] += dj;
                        for (k, &xk) in x.iter().enumerate() {
                            if xk != 0.0 {
                                let cur = g_w1.get(k, j);
                                g_w1.set(k, j, cur + dj * xk);
                            }
                        }
                    }
                }

                let scale = 1.0 / batch.len().max(1) as f32;
                g_w1.scale(scale);
                g_w2.scale(scale);
                for g in g_b1.iter_mut() {
                    *g *= scale;
                }
                for g in g_b2.iter_mut() {
                    *g *= scale;
                }
                if l2 > 0.0 {
                    g_w1.axpy(l2, &w1);
                    g_w2.axpy(l2, &w2);
                }

                // Momentum updates.
                v_w1.scale(mom);
                v_w1.axpy(-lr, &g_w1);
                w1.axpy(1.0, &v_w1);
                v_w2.scale(mom);
                v_w2.axpy(-lr, &g_w2);
                w2.axpy(1.0, &v_w2);
                for j in 0..h {
                    v_b1[j] = mom * v_b1[j] - lr * g_b1[j];
                    b1[j] += v_b1[j];
                }
                for c in 0..num_classes {
                    v_b2[c] = mom * v_b2[c] - lr * g_b2[c];
                    b2[c] += v_b2[c];
                }
            }
        }
        Self { w1, b1, w2, b2, num_classes }
    }

    /// Predicted class for one feature vector.
    pub fn predict_one(&self, x: &[f32]) -> u32 {
        let h = self.b1.len();
        let mut hidden = vec![0.0f32; h];
        for (j, hj) in hidden.iter_mut().enumerate() {
            let mut acc = self.b1[j];
            for (k, &xk) in x.iter().enumerate() {
                acc += self.w1.get(k, j) * xk;
            }
            *hj = acc.max(0.0);
        }
        let logits: Vec<f64> = (0..self.num_classes)
            .map(|c| {
                let mut acc = self.b2[c];
                for (j, &hj) in hidden.iter().enumerate() {
                    acc += self.w2.get(j, c) * hj;
                }
                acc as f64
            })
            .collect();
        stats::argmax(&logits) as u32
    }

    /// Classification error on a labelled set.
    pub fn error(&self, features: &Matrix, labels: &[u32]) -> f64 {
        assert_eq!(features.rows(), labels.len());
        if labels.is_empty() {
            return 0.0;
        }
        let wrong = (0..features.rows()).filter(|&i| self.predict_one(features.row(i)) != labels[i]).count();
        wrong as f64 / labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// XOR-style data that a linear model cannot fit but a small MLP can.
    fn xor_data(n: usize, seed: u64) -> (Matrix, Vec<u32>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a = r.gen_range(0..2u32);
            let b = r.gen_range(0..2u32);
            rows.push(vec![
                (a as f64 * 2.0 - 1.0 + rng::normal(&mut r) * 0.15) as f32,
                (b as f64 * 2.0 - 1.0 + rng::normal(&mut r) * 0.15) as f32,
            ]);
            labels.push(a ^ b);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn mlp_solves_xor() {
        let (x, y) = xor_data(600, 1);
        let config = MlpConfig { hidden: 16, epochs: 80, learning_rate: 0.1, ..Default::default() };
        let model = MlpClassifier::fit(&x, &y, 2, config);
        let err = model.error(&x, &y);
        assert!(err < 0.05, "XOR training error {err}");
    }

    #[test]
    fn mlp_generalises_on_xor() {
        let (train_x, train_y) = xor_data(600, 2);
        let (test_x, test_y) = xor_data(300, 3);
        let config = MlpConfig { hidden: 16, epochs: 80, learning_rate: 0.1, ..Default::default() };
        let model = MlpClassifier::fit(&train_x, &train_y, 2, config);
        assert!(model.error(&test_x, &test_y) < 0.08);
    }

    #[test]
    fn training_is_deterministic_given_a_seed() {
        let (x, y) = xor_data(200, 4);
        let config = MlpConfig { hidden: 8, epochs: 10, ..Default::default() };
        let a = MlpClassifier::fit(&x, &y, 2, config);
        let b = MlpClassifier::fit(&x, &y, 2, config);
        assert_eq!(a.error(&x, &y), b.error(&x, &y));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let (x, _) = xor_data(10, 5);
        let _ = MlpClassifier::fit(&x, &[7u32; 10], 2, MlpConfig::default());
    }
}
