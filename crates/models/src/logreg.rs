//! Multinomial logistic regression trained with mini-batch SGD + momentum.
//!
//! This is the paper's cheap proxy baseline: "training a logistic regression
//! (LR) model on top of all pre-trained transformations … SGD with a momentum
//! of 0.9, a mini-batch size of 64 and 20 epochs", with the minimum test
//! error over the grid of learning rates {0.001, 0.01, 0.1} and L2 penalties
//! {0.0, 0.001, 0.01} (Section VI-A, Baseline 1).

use rand::rngs::StdRng;
use snoopy_linalg::{rng, stats, Matrix};

/// Hyper-parameters of a logistic-regression run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogRegConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Seed controlling shuffling and initialisation.
    pub seed: u64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        Self { learning_rate: 0.01, l2: 0.001, epochs: 20, batch_size: 64, momentum: 0.9, seed: 0 }
    }
}

/// Number of configurations in the paper's hyper-parameter grid.
pub const LOGREG_GRID_SIZE: usize = 9;

/// The paper's hyper-parameter grid (9 configurations).
pub fn paper_grid(epochs: usize, seed: u64) -> Vec<LogRegConfig> {
    let mut grid = Vec::new();
    for &lr in &[0.001, 0.01, 0.1] {
        for &l2 in &[0.0, 0.001, 0.01] {
            grid.push(LogRegConfig { learning_rate: lr, l2, epochs, batch_size: 64, momentum: 0.9, seed });
        }
    }
    grid
}

/// A trained multinomial logistic-regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// `(d + 1) × C` weights including the bias row.
    weights: Matrix,
    num_classes: usize,
    config: LogRegConfig,
}

impl LogisticRegression {
    /// Trains the model on `(features, labels)`.
    ///
    /// # Panics
    /// Panics if the training set is empty or labels exceed `num_classes`.
    pub fn fit(features: &Matrix, labels: &[u32], num_classes: usize, config: LogRegConfig) -> Self {
        assert_eq!(features.rows(), labels.len(), "feature/label count mismatch");
        assert!(!labels.is_empty(), "cannot train on an empty dataset");
        assert!(labels.iter().all(|&y| (y as usize) < num_classes), "label out of range");
        let n = features.rows();
        let d = features.cols();
        let mut weights = Matrix::zeros(d + 1, num_classes);
        let mut velocity = Matrix::zeros(d + 1, num_classes);
        let mut rng_ = rng::seeded(config.seed);

        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..config.epochs {
            rng::shuffle(&mut rng_, &mut order);
            for batch in order.chunks(config.batch_size.max(1)) {
                let grad = Self::batch_gradient(&weights, features, labels, num_classes, batch, config.l2);
                // velocity = momentum * velocity - lr * grad; weights += velocity
                velocity.scale(config.momentum as f32);
                velocity.axpy(-(config.learning_rate as f32), &grad);
                weights.axpy(1.0, &velocity);
            }
        }
        Self { weights, num_classes, config }
    }

    fn batch_gradient(
        weights: &Matrix,
        features: &Matrix,
        labels: &[u32],
        num_classes: usize,
        batch: &[usize],
        l2: f64,
    ) -> Matrix {
        let d = features.cols();
        let mut grad = Matrix::zeros(d + 1, num_classes);
        for &i in batch {
            let x = features.row(i);
            let logits = Self::logits_for(weights, x, num_classes);
            let probs = stats::softmax_f32(&logits);
            for (c, &prob) in probs.iter().enumerate() {
                let err = prob - if labels[i] as usize == c { 1.0 } else { 0.0 };
                if err == 0.0 {
                    continue;
                }
                for (j, &xj) in x.iter().enumerate() {
                    let cur = grad.get(j, c);
                    grad.set(j, c, cur + err * xj);
                }
                let cur = grad.get(d, c);
                grad.set(d, c, cur + err);
            }
        }
        let scale = 1.0 / batch.len().max(1) as f32;
        grad.scale(scale);
        if l2 > 0.0 {
            grad.axpy(l2 as f32, weights);
        }
        grad
    }

    fn logits_for(weights: &Matrix, x: &[f32], num_classes: usize) -> Vec<f32> {
        let d = x.len();
        (0..num_classes)
            .map(|c| {
                let mut acc = weights.get(d, c); // bias
                for (j, &xj) in x.iter().enumerate() {
                    acc += weights.get(j, c) * xj;
                }
                acc
            })
            .collect()
    }

    /// Predicted class for a single feature vector.
    pub fn predict_one(&self, x: &[f32]) -> u32 {
        let logits = Self::logits_for(&self.weights, x, self.num_classes);
        let as_f64: Vec<f64> = logits.iter().map(|&v| v as f64).collect();
        stats::argmax(&as_f64) as u32
    }

    /// Predicted classes for every row of `features`.
    pub fn predict(&self, features: &Matrix) -> Vec<u32> {
        (0..features.rows()).map(|i| self.predict_one(features.row(i))).collect()
    }

    /// Classification error on a labelled set.
    pub fn error(&self, features: &Matrix, labels: &[u32]) -> f64 {
        assert_eq!(features.rows(), labels.len());
        if labels.is_empty() {
            return 0.0;
        }
        let wrong = self.predict(features).iter().zip(labels).filter(|(p, y)| p != y).count();
        wrong as f64 / labels.len() as f64
    }

    /// The configuration used for training.
    pub fn config(&self) -> LogRegConfig {
        self.config
    }
}

/// Trains the paper's full LR grid and returns the minimum test error together
/// with the winning configuration (Baseline 1 reports the minimal test
/// accuracy over the grid).
pub fn grid_search_error(
    train_x: &Matrix,
    train_y: &[u32],
    test_x: &Matrix,
    test_y: &[u32],
    num_classes: usize,
    epochs: usize,
    seed: u64,
) -> (f64, LogRegConfig) {
    let mut best = (f64::INFINITY, LogRegConfig::default());
    for config in paper_grid(epochs, seed) {
        let model = LogisticRegression::fit(train_x, train_y, num_classes, config);
        let err = model.error(test_x, test_y);
        if err < best.0 {
            best = (err, config);
        }
    }
    best
}

/// Deterministic helper used by tests and AutoML: a single mid-grid model.
pub fn train_default(
    train_x: &Matrix,
    train_y: &[u32],
    num_classes: usize,
    seed: u64,
    rng_: &mut StdRng,
) -> LogisticRegression {
    // The RNG parameter keeps call sites explicit about determinism even
    // though the default config derives its own seed.
    let _ = rng_;
    LogisticRegression::fit(train_x, train_y, num_classes, LogRegConfig { seed, ..LogRegConfig::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Linearly separable two-class data.
    fn separable(n: usize, seed: u64) -> (Matrix, Vec<u32>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = r.gen_range(0..2u32);
            let offset = if c == 0 { -2.0 } else { 2.0 };
            rows.push(vec![(rng::normal(&mut r) * 0.5 + offset) as f32, (rng::normal(&mut r) * 0.5) as f32]);
            labels.push(c);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let (x, y) = separable(400, 1);
        let model = LogisticRegression::fit(&x, &y, 2, LogRegConfig { epochs: 10, ..Default::default() });
        let err = model.error(&x, &y);
        assert!(err < 0.03, "training error {err}");
    }

    #[test]
    fn generalises_to_a_test_split() {
        let (train_x, train_y) = separable(400, 2);
        let (test_x, test_y) = separable(200, 3);
        let model =
            LogisticRegression::fit(&train_x, &train_y, 2, LogRegConfig { epochs: 10, ..Default::default() });
        assert!(model.error(&test_x, &test_y) < 0.05);
    }

    #[test]
    fn multiclass_training_works() {
        // Three classes arranged on a line: still linearly separable.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut r = rng::seeded(5);
        for i in 0..450 {
            let c = (i % 3) as u32;
            rows.push(vec![
                (c as f64 * 4.0 + rng::normal(&mut r) * 0.4) as f32,
                rng::normal(&mut r) as f32 * 0.3,
            ]);
            labels.push(c);
        }
        let x = Matrix::from_rows(&rows);
        let model =
            LogisticRegression::fit(&x, &labels, 3, LogRegConfig { epochs: 15, ..Default::default() });
        assert!(model.error(&x, &labels) < 0.05);
    }

    #[test]
    fn paper_grid_has_nine_configurations() {
        let grid = paper_grid(20, 7);
        assert_eq!(grid.len(), 9);
        assert!(grid
            .iter()
            .all(|c| c.batch_size == 64 && (c.momentum - 0.9).abs() < 1e-12 && c.epochs == 20));
        let lrs: Vec<f64> = grid.iter().map(|c| c.learning_rate).collect();
        assert!(lrs.contains(&0.001) && lrs.contains(&0.1));
    }

    #[test]
    fn grid_search_returns_a_sensible_winner() {
        let (train_x, train_y) = separable(300, 8);
        let (test_x, test_y) = separable(150, 9);
        let (err, config) = grid_search_error(&train_x, &train_y, &test_x, &test_y, 2, 6, 11);
        assert!(err < 0.08, "grid-search error {err}");
        assert!(config.learning_rate > 0.0);
    }

    #[test]
    fn l2_regularisation_shrinks_weights() {
        let (x, y) = separable(200, 12);
        let free =
            LogisticRegression::fit(&x, &y, 2, LogRegConfig { l2: 0.0, epochs: 10, ..Default::default() });
        let constrained =
            LogisticRegression::fit(&x, &y, 2, LogRegConfig { l2: 0.05, epochs: 10, ..Default::default() });
        assert!(constrained.weights.frobenius_norm() < free.weights.frobenius_norm());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let (x, _) = separable(10, 13);
        let bad_labels = vec![5u32; 10];
        let _ = LogisticRegression::fit(&x, &bad_labels, 2, LogRegConfig::default());
    }

    #[test]
    fn empty_test_set_reports_zero_error() {
        let (x, y) = separable(50, 14);
        let model = LogisticRegression::fit(&x, &y, 2, LogRegConfig { epochs: 3, ..Default::default() });
        assert_eq!(model.error(&Matrix::zeros(0, 2), &[]), 0.0);
    }
}
