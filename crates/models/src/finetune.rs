//! The FineTune baseline (Section VI-A, Baseline 3).
//!
//! In the paper this baseline fine-tunes EfficientNet-B4 (vision) or
//! BERT-Base (text) and is "equipped with a strong prior knowledge which is
//! usually unavailable for performing a cheap feasibility study"; it supplies
//! the expensive high-accuracy training run of the end-to-end use case and
//! the SOTA-anchored reference error `s_{X,Y}` of Theorem 3.1's bounds.
//!
//! The offline replica trains a comparatively large MLP on the raw features
//! for many epochs. Because the synthetic tasks are (by construction)
//! solvable from the raw features up to the injected label noise, this model
//! approaches the clean-task SOTA plus the noise floor — exactly the role the
//! fine-tuned model plays in Figures 4/5/9/10 — while charging a simulated
//! GPU cost of ~10 hours per 50 000-sample run (Section VI-F).

use crate::mlp::{MlpClassifier, MlpConfig};
use snoopy_data::TaskDataset;

/// Simulated fine-tuning cost in seconds per training sample (0.72 s/sample
/// ≈ 10 GPU-hours for a 50 000-sample dataset, the paper's EfficientNet-B4
/// number for one hyper-parameter configuration).
pub const FINETUNE_SECONDS_PER_SAMPLE: f64 = 0.72;

/// Configuration of the FineTune baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FineTuneBaseline {
    /// Hidden width of the stand-in network.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Number of hyper-parameter configurations tried (the paper fine-tunes
    /// BERT with 3 learning rates); the best test error is reported and each
    /// configuration is charged separately.
    pub configurations: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for FineTuneBaseline {
    fn default() -> Self {
        Self { hidden: 128, epochs: 40, configurations: 1, seed: 0 }
    }
}

/// Result of one FineTune run.
#[derive(Debug, Clone)]
pub struct FineTuneOutcome {
    /// Test error on the (possibly noisy) test labels.
    pub test_error: f64,
    /// Test *accuracy* — convenience companion of `test_error`.
    pub test_accuracy: f64,
    /// Simulated GPU seconds charged for the run.
    pub simulated_seconds: f64,
}

impl FineTuneBaseline {
    /// A faster configuration for tests and small-scale experiments. Like the
    /// paper's BERT fine-tuning it tries three learning rates and keeps the
    /// best: the hottest rate alone can diverge on some replicas.
    pub fn quick(seed: u64) -> Self {
        Self { hidden: 48, epochs: 15, configurations: 3, seed }
    }

    /// Runs the expensive training on the task's current (observed) labels.
    pub fn run(&self, task: &TaskDataset) -> FineTuneOutcome {
        let learning_rates = [0.1f64, 0.05, 0.02];
        let mut best_error = f64::INFINITY;
        for (i, &lr) in learning_rates.iter().take(self.configurations.max(1)).enumerate() {
            let config = MlpConfig {
                hidden: self.hidden,
                epochs: self.epochs,
                learning_rate: lr,
                seed: self.seed.wrapping_add(i as u64),
                ..Default::default()
            };
            let model =
                MlpClassifier::fit(&task.train.features, &task.train.labels, task.num_classes, config);
            let error = model.error(&task.test.features, &task.test.labels);
            best_error = best_error.min(error);
        }
        let simulated_seconds =
            FINETUNE_SECONDS_PER_SAMPLE * task.train.len() as f64 * self.configurations.max(1) as f64;
        FineTuneOutcome { test_error: best_error, test_accuracy: 1.0 - best_error, simulated_seconds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::noise::NoiseModel;
    use snoopy_data::registry::{load_clean, load_with_noise, SizeScale};

    #[test]
    fn finetune_approaches_clean_task_ceiling() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let outcome = FineTuneBaseline::quick(2).run(&task);
        // The tiny replica is solvable almost perfectly from raw features.
        assert!(outcome.test_error < 0.15, "error {}", outcome.test_error);
        assert!((outcome.test_accuracy + outcome.test_error - 1.0).abs() < 1e-12);
        assert!(outcome.simulated_seconds > 0.0);
    }

    #[test]
    fn label_noise_floors_the_achievable_accuracy() {
        let clean = load_clean("sst2", SizeScale::Tiny, 3);
        let noisy = load_with_noise("sst2", SizeScale::Tiny, &NoiseModel::Uniform(0.6), 3);
        let clean_outcome = FineTuneBaseline::quick(4).run(&clean);
        let noisy_outcome = FineTuneBaseline::quick(4).run(&noisy);
        // Uniform(0.6) on binary labels flips 30% of test labels, so even a
        // perfect model cannot go below ~0.3 test error on the noisy labels.
        assert!(
            noisy_outcome.test_error > clean_outcome.test_error + 0.1,
            "noisy {} vs clean {}",
            noisy_outcome.test_error,
            clean_outcome.test_error
        );
    }

    #[test]
    fn simulated_cost_matches_paper_scale() {
        // 50 000 training samples at one configuration ≈ 10 hours.
        let seconds = FINETUNE_SECONDS_PER_SAMPLE * 50_000.0;
        assert!((seconds / 3600.0 - 10.0).abs() < 0.1);
    }

    #[test]
    fn more_configurations_cost_proportionally_more() {
        let task = load_clean("mnist", SizeScale::Tiny, 5);
        let one = FineTuneBaseline { configurations: 1, ..FineTuneBaseline::quick(6) }.run(&task);
        let three = FineTuneBaseline { configurations: 3, ..FineTuneBaseline::quick(6) }.run(&task);
        assert!((three.simulated_seconds - 3.0 * one.simulated_seconds).abs() < 1e-9);
        assert!(three.test_error <= one.test_error + 1e-12);
    }
}
