//! Budgeted AutoML search standing in for AutoKeras / auto-sklearn
//! (Section VI-A, Baseline 2).
//!
//! The search draws model configurations (logistic regression over the
//! paper's grid, kNN classifiers with varying `k`, and small MLPs) at random,
//! trains them on the raw features, and keeps the best test error found
//! before the simulated time budget runs out. Per-trial simulated time is
//! proportional to the training-set size with a per-family constant, so the
//! "short" (1 h) and "long" (10 h) configurations of the paper differ in how
//! many configurations they manage to explore — precisely the trade-off
//! Figure 4 plots against Snoopy.

use crate::logreg::{paper_grid, LogisticRegression};
use crate::mlp::{MlpClassifier, MlpConfig};
use rand::Rng;
use snoopy_knn::{BruteForceIndex, Metric};
use snoopy_linalg::{rng, Matrix};

/// AutoML budget configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoMlConfig {
    /// Simulated wall-clock budget in seconds.
    pub time_budget_seconds: f64,
    /// Hard cap on the number of trials (AutoKeras' `trials` parameter).
    pub max_trials: usize,
    /// Epochs used for gradient-trained candidates.
    pub epochs: usize,
    /// Search seed.
    pub seed: u64,
}

impl AutoMlConfig {
    /// auto-sklearn with a 1-hour budget.
    pub fn short(seed: u64) -> Self {
        Self { time_budget_seconds: 3_600.0, max_trials: 64, epochs: 15, seed }
    }

    /// auto-sklearn with a 10-hour budget.
    pub fn long(seed: u64) -> Self {
        Self { time_budget_seconds: 36_000.0, max_trials: 512, epochs: 25, seed }
    }

    /// AutoKeras with its default 2 trials and (up to) 100 epochs.
    pub fn autokeras(seed: u64) -> Self {
        Self { time_budget_seconds: f64::INFINITY, max_trials: 2, epochs: 100, seed }
    }
}

/// Result of an AutoML run.
#[derive(Debug, Clone)]
pub struct AutoMlOutcome {
    /// Best test error found.
    pub best_error: f64,
    /// Description of the winning configuration.
    pub best_model: String,
    /// Number of trials completed within the budget.
    pub trials_run: usize,
    /// Simulated seconds spent.
    pub simulated_seconds: f64,
}

/// One candidate family of the search space.
#[derive(Debug, Clone, Copy)]
enum Candidate {
    LogReg { grid_index: usize },
    Knn { k: usize },
    Mlp { hidden: usize },
}

/// The AutoML search driver.
#[derive(Debug, Clone)]
pub struct AutoMlSearch {
    config: AutoMlConfig,
}

/// Simulated seconds per training sample for one trial of each family.
/// Calibrated so that a 50 000-sample dataset costs ≈ 200 s (LR), ≈ 60 s
/// (kNN), ≈ 1 800 s (MLP) per trial — the ordering of Figure 4's baselines.
const LOGREG_SECONDS_PER_SAMPLE: f64 = 0.004;
const KNN_SECONDS_PER_SAMPLE: f64 = 0.0012;
const MLP_SECONDS_PER_SAMPLE: f64 = 0.036;

impl AutoMlSearch {
    /// Creates a search with the given budget.
    pub fn new(config: AutoMlConfig) -> Self {
        Self { config }
    }

    /// Runs the search.
    pub fn run(
        &self,
        train_x: &Matrix,
        train_y: &[u32],
        test_x: &Matrix,
        test_y: &[u32],
        num_classes: usize,
    ) -> AutoMlOutcome {
        let mut r = rng::seeded(self.config.seed);
        let grid = paper_grid(self.config.epochs, self.config.seed);
        let mut best_error = f64::INFINITY;
        let mut best_model = String::from("none");
        let mut simulated = 0.0f64;
        let mut trials = 0usize;
        let n = train_y.len();

        while trials < self.config.max_trials && simulated < self.config.time_budget_seconds {
            let candidate = match r.gen_range(0..3) {
                0 => Candidate::LogReg { grid_index: r.gen_range(0..grid.len()) },
                1 => Candidate::Knn { k: *[1usize, 3, 5, 9, 15].get(r.gen_range(0..5usize)).unwrap() },
                _ => Candidate::Mlp { hidden: *[32usize, 64, 128].get(r.gen_range(0..3usize)).unwrap() },
            };
            let (error, cost, description) = match candidate {
                Candidate::LogReg { grid_index } => {
                    let config = grid[grid_index];
                    let model = LogisticRegression::fit(train_x, train_y, num_classes, config);
                    (
                        model.error(test_x, test_y),
                        LOGREG_SECONDS_PER_SAMPLE * n as f64,
                        format!("logreg(lr={}, l2={})", config.learning_rate, config.l2),
                    )
                }
                Candidate::Knn { k } => {
                    let index = BruteForceIndex::new(train_x, train_y, num_classes, Metric::SquaredEuclidean);
                    (
                        index.knn_error(test_x, test_y, k),
                        KNN_SECONDS_PER_SAMPLE * n as f64,
                        format!("knn(k={k})"),
                    )
                }
                Candidate::Mlp { hidden } => {
                    let config = MlpConfig {
                        hidden,
                        epochs: self.config.epochs,
                        seed: self.config.seed ^ trials as u64,
                        ..Default::default()
                    };
                    let model = MlpClassifier::fit(train_x, train_y, num_classes, config);
                    (
                        model.error(test_x, test_y),
                        MLP_SECONDS_PER_SAMPLE * n as f64,
                        format!("mlp(hidden={hidden})"),
                    )
                }
            };
            trials += 1;
            simulated += cost;
            if error < best_error {
                best_error = error;
                best_model = description;
            }
        }

        AutoMlOutcome { best_error, best_model, trials_run: trials, simulated_seconds: simulated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::registry::{load_clean, SizeScale};

    #[test]
    fn automl_beats_chance_on_an_easy_task() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let search =
            AutoMlSearch::new(AutoMlConfig { time_budget_seconds: 1e9, max_trials: 4, epochs: 8, seed: 3 });
        let outcome = search.run(
            &task.train.features,
            &task.train.labels,
            &task.test.features,
            &task.test.labels,
            task.num_classes,
        );
        let chance = 1.0 - 1.0 / task.num_classes as f64;
        assert!(outcome.best_error < chance * 0.8, "error {}", outcome.best_error);
        assert_eq!(outcome.trials_run, 4);
        assert!(outcome.simulated_seconds > 0.0);
        assert_ne!(outcome.best_model, "none");
    }

    #[test]
    fn budget_limits_the_number_of_trials() {
        let task = load_clean("sst2", SizeScale::Tiny, 2);
        let tight = AutoMlSearch::new(AutoMlConfig {
            time_budget_seconds: 0.5, // allows exactly one trial (cost is checked after running it)
            max_trials: 100,
            epochs: 3,
            seed: 5,
        });
        let outcome = tight.run(
            &task.train.features,
            &task.train.labels,
            &task.test.features,
            &task.test.labels,
            task.num_classes,
        );
        assert_eq!(outcome.trials_run, 1);
    }

    #[test]
    fn longer_budgets_do_not_hurt() {
        let task = load_clean("mnist", SizeScale::Tiny, 7);
        let short =
            AutoMlSearch::new(AutoMlConfig { time_budget_seconds: 1e9, max_trials: 2, epochs: 6, seed: 11 })
                .run(
                    &task.train.features,
                    &task.train.labels,
                    &task.test.features,
                    &task.test.labels,
                    task.num_classes,
                );
        let long =
            AutoMlSearch::new(AutoMlConfig { time_budget_seconds: 1e9, max_trials: 8, epochs: 6, seed: 11 })
                .run(
                    &task.train.features,
                    &task.train.labels,
                    &task.test.features,
                    &task.test.labels,
                    task.num_classes,
                );
        assert!(long.best_error <= short.best_error + 1e-12);
        assert!(long.simulated_seconds >= short.simulated_seconds);
    }

    #[test]
    fn paper_configurations_have_expected_budgets() {
        assert_eq!(AutoMlConfig::short(1).time_budget_seconds, 3_600.0);
        assert_eq!(AutoMlConfig::long(1).time_budget_seconds, 36_000.0);
        assert_eq!(AutoMlConfig::autokeras(1).max_trials, 2);
    }
}
