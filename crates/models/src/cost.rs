//! Cost model of the end-to-end use case (Section VI-D).
//!
//! The paper measures everything in a hypothetical dollar price combining
//! human labelling costs ("free", "cheap" = 0.002 $/label, "expensive" =
//! 0.02 $/label) with machine costs fixed at 0.9 $/hour (the price of a
//! single-GPU EC2 instance at the time of writing).

/// Per-label human annotation cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LabelCost {
    /// Labels are free (e.g. an in-house expert whose time is not billed).
    Free,
    /// 0.002 $ per label (500 labels per dollar).
    Cheap,
    /// 0.02 $ per label (50 labels per dollar).
    Expensive,
    /// A custom dollar price per label.
    Custom(f64),
}

impl LabelCost {
    /// Dollars charged per inspected label.
    pub fn dollars_per_label(&self) -> f64 {
        match self {
            LabelCost::Free => 0.0,
            LabelCost::Cheap => 0.002,
            LabelCost::Expensive => 0.02,
            LabelCost::Custom(v) => *v,
        }
    }

    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            LabelCost::Free => "free",
            LabelCost::Cheap => "cheap",
            LabelCost::Expensive => "expensive",
            LabelCost::Custom(_) => "custom",
        }
    }
}

/// Machine (GPU) cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineCost {
    /// Dollars per hour of simulated GPU time.
    pub dollars_per_hour: f64,
}

impl Default for MachineCost {
    fn default() -> Self {
        Self { dollars_per_hour: 0.9 }
    }
}

impl MachineCost {
    /// Dollars charged for `seconds` of simulated machine time.
    pub fn dollars_for_seconds(&self, seconds: f64) -> f64 {
        self.dollars_per_hour * seconds / 3600.0
    }
}

/// A full cost scenario: label cost plus machine cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostScenario {
    /// Human labelling cost.
    pub label: LabelCost,
    /// Machine cost.
    pub machine: MachineCost,
}

impl CostScenario {
    /// The three scenarios evaluated in the paper.
    pub fn paper_scenarios() -> Vec<CostScenario> {
        vec![
            CostScenario { label: LabelCost::Free, machine: MachineCost::default() },
            CostScenario { label: LabelCost::Cheap, machine: MachineCost::default() },
            CostScenario { label: LabelCost::Expensive, machine: MachineCost::default() },
        ]
    }

    /// Total dollars for a given number of inspected labels plus machine
    /// seconds.
    pub fn total_dollars(&self, labels_inspected: usize, machine_seconds: f64) -> f64 {
        self.label.dollars_per_label() * labels_inspected as f64
            + self.machine.dollars_for_seconds(machine_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_costs_match_paper_values() {
        assert_eq!(LabelCost::Free.dollars_per_label(), 0.0);
        assert!((LabelCost::Cheap.dollars_per_label() - 0.002).abs() < 1e-12);
        assert!((LabelCost::Expensive.dollars_per_label() - 0.02).abs() < 1e-12);
        assert_eq!(LabelCost::Custom(0.5).dollars_per_label(), 0.5);
        assert_eq!(LabelCost::Cheap.name(), "cheap");
    }

    #[test]
    fn machine_cost_is_090_per_hour() {
        let m = MachineCost::default();
        assert!((m.dollars_for_seconds(3600.0) - 0.9).abs() < 1e-12);
        assert!((m.dollars_for_seconds(1800.0) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn scenarios_cover_free_cheap_expensive() {
        let scenarios = CostScenario::paper_scenarios();
        assert_eq!(scenarios.len(), 3);
        // 500 labels per dollar in the cheap regime.
        let cheap = scenarios[1];
        assert!((cheap.total_dollars(500, 0.0) - 1.0).abs() < 1e-12);
        // 50 labels per dollar in the expensive regime.
        let expensive = scenarios[2];
        assert!((expensive.total_dollars(50, 0.0) - 1.0).abs() < 1e-12);
        // Machine time adds on top.
        assert!(expensive.total_dollars(50, 3600.0) > 1.8);
    }
}
