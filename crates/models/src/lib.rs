//! # snoopy-models
//!
//! Baseline models that the paper compares Snoopy against (Section VI-A):
//!
//! * **LR proxy** ([`logreg`]): multinomial logistic regression trained with
//!   SGD + momentum over the paper's hyper-parameter grid (learning rates
//!   {0.001, 0.01, 0.1} × L2 {0, 0.001, 0.01}, 20 epochs, batch 64), whose
//!   minimal test error serves as a cheap feasibility proxy,
//! * **AutoML** ([`automl`]): a budgeted search over logistic regression,
//!   kNN, and MLP configurations standing in for AutoKeras / auto-sklearn,
//! * **FineTune** ([`finetune`]): an expensive, high-capacity model standing
//!   in for fine-tuning EfficientNet-B4 / BERT — the "expensive training run"
//!   of the end-to-end use case, with a matching simulated cost,
//! * **MLP** ([`mlp`]): the shared multilayer-perceptron building block,
//! * a simulated machine-cost model ([`cost`]) used to convert training time
//!   into the hypothetical dollar costs of Figures 9/10.

pub mod automl;
pub mod cost;
pub mod finetune;
pub mod logreg;
pub mod mlp;

pub use automl::{AutoMlConfig, AutoMlOutcome, AutoMlSearch};
pub use cost::{CostScenario, LabelCost, MachineCost};
pub use finetune::{FineTuneBaseline, FineTuneOutcome};
pub use logreg::{LogRegConfig, LogisticRegression};
pub use mlp::{MlpClassifier, MlpConfig};
